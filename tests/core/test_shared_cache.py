"""Per-query delta accounting and warm-cache workload savings."""

import pytest

from repro.core.diversified_search import seq_search
from repro.network.distance import PairwiseDistanceComputer
from repro.workloads.queries import WorkloadConfig, generate_diversified_queries
from repro.workloads.runner import run_diversified_workload


@pytest.fixture(scope="module")
def sif(tiny_db):
    return tiny_db.build_index("sif", file_prefix="cache-sif")


@pytest.fixture(scope="module")
def queries(tiny_db):
    return generate_diversified_queries(
        tiny_db, WorkloadConfig(num_queries=6, num_keywords=2, k=5, seed=33)
    )


class TestDeltaAccounting:
    """Regression for the stale-accounting bug: with a shared
    ``pairwise=`` computer, per-query stats must be deltas of the
    computer's lifetime counters, not the lifetime totals."""

    def test_shared_computer_reports_per_query_deltas(
        self, tiny_db, sif, queries
    ):
        q1, q2 = queries[0], queries[1]
        cutoff = 2.0 * max(q1.delta_max, q2.delta_max) * 1.001
        comp = PairwiseDistanceComputer(
            tiny_db.ccam, tiny_db.network, cutoff=cutoff
        )
        r1 = seq_search(tiny_db.ccam, tiny_db.network, sif, q1, pairwise=comp)
        runs_after_first = comp.dijkstra_runs
        r2 = seq_search(tiny_db.ccam, tiny_db.network, sif, q2, pairwise=comp)

        assert r1.stats.pairwise_dijkstras == runs_after_first
        assert r2.stats.pairwise_dijkstras == (
            comp.dijkstra_runs - runs_after_first
        )
        assert r1.stats.pairwise_dijkstras > 0
        # The historic bug: query 2 reported the lifetime total.
        assert r2.stats.pairwise_dijkstras < comp.dijkstra_runs

        hits, misses, _ = comp.cache.counters_snapshot()
        assert r1.stats.distance_cache_hits + r2.stats.distance_cache_hits == hits
        assert (
            r1.stats.distance_cache_misses + r2.stats.distance_cache_misses
            == misses
        )


class TestSharedCacheWorkload:
    """Acceptance: a diversified workload served through a shared
    bounded cache performs measurably fewer Dijkstra runs, visible in
    the report's cache-hit metrics."""

    def test_warm_cache_reduces_dijkstra_runs(self, tiny_db, sif, queries):
        baseline = run_diversified_workload(
            tiny_db, sif, queries, method="seq", label="cold"
        )
        assert baseline.total_pairwise_dijkstras > 0
        try:
            cache = tiny_db.use_shared_distance_cache(max_entries=500_000)
            warmup = run_diversified_workload(
                tiny_db, sif, queries, method="seq", label="warmup"
            )
            warm = run_diversified_workload(
                tiny_db, sif, queries, method="seq", label="warm"
            )
        finally:
            tiny_db.distance_cache = None

        # Cross-query reuse never costs extra Dijkstras...
        assert warmup.total_pairwise_dijkstras <= baseline.total_pairwise_dijkstras
        # ...and rerunning the workload against warm maps saves real work.
        assert warm.total_pairwise_dijkstras < baseline.total_pairwise_dijkstras
        assert warm.total_distance_cache_hits > 0
        assert warm.distance_cache_hit_rate > baseline.distance_cache_hit_rate
        assert cache.entries <= 500_000
        # Warm answers are the same answers.
        assert warm.total_results == baseline.total_results
        assert warm.total_candidates == baseline.total_candidates
        row = warm.row()
        assert "avg_dijkstras" in row and "cache_hit_pct" in row
