"""Dynamic-update orchestration: journal, epochs, reweights, stale reads."""

import pytest

from repro import Database, NetworkPosition
from repro.core.updates import UpdateJournal, UpdateRecord
from repro.errors import DatasetError, GraphError, QueryError


@pytest.fixture()
def live_db(grid_network9):
    db = Database(grid_network9, buffer_pages=64)
    db.add_object(NetworkPosition(0, 20.0), {"pizza"})
    db.add_object(NetworkPosition(3, 50.0), {"pizza", "bar"})
    db.freeze()
    return db


class TestUpdateJournal:
    def test_append_requires_increasing_epoch(self):
        journal = UpdateJournal()
        journal.append(UpdateRecord(epoch=1, kind="insert", edge_id=0))
        journal.append(UpdateRecord(epoch=2, kind="delete", edge_id=0))
        with pytest.raises(ValueError):
            journal.append(UpdateRecord(epoch=2, kind="insert", edge_id=0))
        with pytest.raises(ValueError):
            journal.append(UpdateRecord(epoch=1, kind="insert", edge_id=0))

    def test_since_returns_strict_tail(self):
        journal = UpdateJournal()
        for epoch in (1, 2, 5):
            journal.append(
                UpdateRecord(epoch=epoch, kind="edge_weight", edge_id=0)
            )
        assert [r.epoch for r in journal.since(0)] == [1, 2, 5]
        assert [r.epoch for r in journal.since(2)] == [5]
        assert journal.since(5) == []
        assert len(journal) == 3

    def test_counts(self):
        journal = UpdateJournal()
        journal.append(UpdateRecord(epoch=1, kind="insert", edge_id=0))
        journal.append(UpdateRecord(epoch=2, kind="insert", edge_id=1))
        journal.append(UpdateRecord(epoch=3, kind="delete", edge_id=0))
        assert journal.counts() == {"insert": 2, "delete": 1, "edge_weight": 0}

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            UpdateRecord(epoch=1, kind="rename", edge_id=0)


class TestDatabaseUpdates:
    def test_epochs_advance_and_journal_records(self, live_db):
        assert live_db.data_version == 0
        obj = live_db.insert_object(NetworkPosition(1, 10.0), {"sushi"})
        assert live_db.data_version == 1
        live_db.delete_object(obj.object_id)
        assert live_db.data_version == 2
        live_db.update_edge_weight(0, 120.0)
        assert live_db.data_version == 3
        kinds = [r.kind for r in live_db.update_journal.since(0)]
        assert kinds == ["insert", "delete", "edge_weight"]
        assert live_db.metrics.counters()["update.insert"] == 1

    def test_object_ids_never_reused(self, live_db):
        a = live_db.insert_object(NetworkPosition(1, 10.0), {"x"})
        live_db.delete_object(a.object_id)
        b = live_db.insert_object(NetworkPosition(1, 10.0), {"x"})
        assert b.object_id != a.object_id

    def test_delete_unknown_object_raises(self, live_db):
        with pytest.raises(DatasetError):
            live_db.delete_object(999)

    def test_reweight_rescales_offsets_and_adjacency(self, live_db):
        edge = live_db.network.edge(0)
        on_edge = live_db.store.objects_on_edge(0)
        old_offsets = [o.position.offset for o in on_edge]
        live_db.update_edge_weight(0, edge.weight * 2.0)
        assert live_db.network.edge(0).weight == pytest.approx(
            edge.weight * 2.0
        )
        # Adjacency lists carry the new weight on both endpoints.
        for node_id in (edge.n1, edge.n2):
            weights = [
                w for eid, _o, w in live_db.network.neighbors(node_id)
                if eid == 0
            ]
            assert weights == [pytest.approx(edge.weight * 2.0)]
        # Objects keep their geometric spot: offsets scale with weight.
        new_offsets = [
            o.position.offset for o in live_db.store.objects_on_edge(0)
        ]
        assert new_offsets == [pytest.approx(2.0 * off) for off in old_offsets]

    def test_reweight_refreshes_ccam_pages(self, live_db):
        edge = live_db.network.edge(0)
        live_db.update_edge_weight(0, edge.weight * 3.0)
        for node_id in (edge.n1, edge.n2):
            weights = [
                w for eid, _o, w in live_db.ccam.neighbors(node_id)
                if eid == 0
            ]
            assert weights == [pytest.approx(edge.weight * 3.0)]

    def test_reweight_noop_when_weight_unchanged(self, live_db):
        edge = live_db.network.edge(0)
        live_db.update_edge_weight(0, edge.weight)
        assert live_db.data_version == 0
        assert len(live_db.update_journal) == 0

    def test_reweight_rejects_nonpositive_weight(self, live_db):
        with pytest.raises(GraphError):
            live_db.update_edge_weight(0, 0.0)

    def test_reweight_invalidates_shared_cache(self, live_db):
        cache = live_db.use_shared_distance_cache(max_entries=1000)
        cache.put((0, 1.0, 5.0), {1: 1.0}, epoch=0)
        assert len(cache) == 1
        live_db.update_edge_weight(0, 120.0)
        assert len(cache) == 0
        assert cache.epoch == live_db.data_version

    def test_reweight_drops_ch_oracle_for_lazy_rebuild(self, live_db):
        live_db.use_distance_backend("ch")
        oracle = live_db.ch_oracle()
        live_db.update_edge_weight(0, 140.0)
        assert live_db._ch_oracle is None
        rebuilt = live_db.ch_oracle()
        assert rebuilt is not oracle
        assert live_db.metrics.counters()["ch.invalidations"] == 1

    def test_reweight_drops_hub_oracle_and_csr_for_lazy_rebuild(
        self, live_db
    ):
        live_db.use_distance_backend("hub")
        oracle = live_db.hub_oracle()
        csr = live_db.csr_graph()
        live_db.update_edge_weight(0, 140.0)
        assert live_db._hub_oracle is None
        assert live_db._csr_graph is None
        rebuilt = live_db.hub_oracle()
        assert rebuilt is not oracle
        assert live_db.csr_graph() is not csr
        counters = live_db.metrics.counters()
        assert counters["hub_label.invalidations"] == 1
        # The rebuilt CSR reflects the committed weight.
        live_db.csr_graph().validate_roundtrip(
            live_db.network, store=live_db.store
        )

    def test_updates_require_frozen_db(self, grid_network9):
        db = Database(grid_network9, buffer_pages=8)
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            db.update_edge_weight(0, 50.0)
        with pytest.raises(ReproError):
            db.delete_object(0)

    def test_index_without_delete_support_rejected(self, live_db):
        index = live_db.build_index("ir")
        obj = live_db.insert_object(NetworkPosition(1, 5.0), {"x"})
        with pytest.raises(QueryError):
            live_db.delete_object(obj.object_id, indexes=(index,))


class TestStaleReadSafety:
    def test_new_epoch_query_never_sees_pre_update_maps(self, live_db):
        """After an edge reweight commits, a query pinned to the new
        epoch must not read node maps cached before the update."""
        from repro.core.queries import DiversifiedSKQuery

        cache = live_db.use_shared_distance_cache(max_entries=10_000)
        index = live_db.build_index("sif")
        q = DiversifiedSKQuery.create(
            NetworkPosition(0, 0.0), ["pizza"], 1000.0, 2, 0.8
        )
        before = live_db.diversified_search(index, q, method="seq")
        assert len(cache) > 0
        live_db.update_edge_weight(0, 37.0)
        assert len(cache) == 0  # invalidated at commit
        after = live_db.diversified_search(index, q, method="seq")
        # The rescaled edge moved the query-edge objects: distances in
        # the new answer reflect post-update weights, not cached ones.
        d_before = {i.object.object_id: i.distance for i in before.items}
        d_after = {i.object.object_id: i.distance for i in after.items}
        changed = [
            oid for oid in d_before
            if oid in d_after
            and d_after[oid] != pytest.approx(d_before[oid])
        ]
        assert changed, "reweight must be visible to the next query"

    def test_stale_writer_cannot_repollute(self, live_db):
        cache = live_db.use_shared_distance_cache(max_entries=10_000)
        pinned_epoch = live_db.data_version  # an in-flight query's pin
        live_db.update_edge_weight(0, 42.0)
        # The in-flight query finishes its Dijkstra and writes back.
        rejected = cache.put((0, 1.0, 5.0), {1: 1.0}, epoch=pinned_epoch)
        assert rejected == 0
        assert len(cache) == 0
        assert cache.stats()["stale_puts"] == 1

    def test_plans_expose_dynamic_hints(self, live_db):
        from repro.core.queries import DiversifiedSKQuery
        from repro.engine.plan import plan_diversified

        index = live_db.build_index("sif")
        live_db.insert_object(NetworkPosition(1, 10.0), {"pizza"}, [index])
        q = DiversifiedSKQuery.create(
            NetworkPosition(0, 0.0), ["pizza"], 1000.0, 2, 0.8
        )
        plan = plan_diversified(live_db, index, q, method="seq")
        assert plan.hints.data_version == 1
        assert plan.hints.recent_updates == 1
        assert "epoch 1" in plan.describe()

    def test_query_stats_carry_epoch(self, live_db):
        from repro.core.queries import DiversifiedSKQuery

        index = live_db.build_index("sif")
        q = DiversifiedSKQuery.create(
            NetworkPosition(0, 0.0), ["pizza"], 1000.0, 2, 0.8
        )
        live_db.update_edge_weight(4, 250.0)
        result = live_db.diversified_search(index, q, method="seq")
        assert result.stats.epoch == live_db.data_version
