"""Tests for the dataset catalog (Table 2 profiles)."""

import pytest

from repro.datasets.catalog import PROFILES, DatasetProfile, build_dataset, build_network
from repro.errors import DatasetError


class TestProfiles:
    def test_all_four_paper_datasets_exist(self):
        assert set(PROFILES) == {"NA", "SF", "TW", "SYN"}

    def test_profiles_mirror_paper_shape(self):
        """Relative dataset properties from the paper's Table 2."""
        na, sf, tw = PROFILES["NA"], PROFILES["SF"], PROFILES["TW"]
        # TW is the biggest corpus with the biggest vocabulary.
        assert tw.num_objects > na.num_objects
        assert tw.vocabulary_size > na.vocabulary_size > sf.vocabulary_size
        # SF has by far the richest per-object keyword sets.
        assert sf.avg_keywords > tw.avg_keywords > na.avg_keywords

    def test_scaled(self):
        p = PROFILES["NA"].scaled(0.5)
        assert p.num_nodes == PROFILES["NA"].num_nodes // 2
        assert p.num_objects == PROFILES["NA"].num_objects // 2

    def test_scaled_invalid(self):
        with pytest.raises(DatasetError):
            PROFILES["NA"].scaled(0)

    def test_build_network_kinds(self):
        grid = build_network(PROFILES["NA"].scaled(0.05))
        planar = build_network(PROFILES["SF"].scaled(0.05))
        assert grid.num_nodes > 0
        assert planar.num_nodes > 0
        bad = DatasetProfile("X", "moebius", 10, 3, 10, 10, 2)
        with pytest.raises(DatasetError):
            build_network(bad)


class TestBuildDataset:
    def test_by_name_with_scale(self):
        db = build_dataset("NA", scale=0.05)
        stats = db.dataset_statistics()
        assert stats["num_objects"] > 0
        assert stats["num_nodes"] > 0

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            build_dataset("MARS")

    def test_overrides(self):
        db = build_dataset("SYN", scale=0.05, num_objects=123)
        assert db.dataset_statistics()["num_objects"] == 123

    def test_determinism(self):
        a = build_dataset("SYN", scale=0.05)
        b = build_dataset("SYN", scale=0.05)
        assert a.dataset_statistics() == b.dataset_statistics()
        for oa, ob in zip(a.store, b.store):
            assert oa.position == ob.position
            assert oa.keywords == ob.keywords

    def test_database_is_frozen_and_queryable(self):
        db = build_dataset("SYN", scale=0.05)
        index = db.build_index("sif")
        from repro.workloads.queries import WorkloadConfig, generate_sk_queries

        q = generate_sk_queries(db, WorkloadConfig(num_queries=1, seed=1))[0]
        db.sk_search(index, q)  # must not raise
