"""Tests for the spatio-textual object generator."""

import numpy as np
import pytest

from repro.datasets.generator import populate_objects, random_positions
from repro.datasets.synthetic import grid_network
from repro.errors import DatasetError
from repro.network.objects import ObjectStore


@pytest.fixture()
def network():
    return grid_network(8, 8, seed=1)


class TestRandomPositions:
    def test_count_and_validity(self, network):
        rng = np.random.default_rng(0)
        positions = random_positions(network, 200, rng)
        assert len(positions) == 200
        for pos in positions:
            edge = network.edge(pos.edge_id)
            assert 0.0 <= pos.offset <= edge.weight + 1e-9

    def test_length_weighted(self):
        """Longer edges receive proportionally more objects."""
        from repro.network.graph import RoadNetwork

        n = RoadNetwork()
        n.add_node(0, 0, 0)
        n.add_node(1, 900, 0)
        n.add_node(2, 1000, 0)
        n.add_edge(0, 1)  # length 900
        n.add_edge(1, 2)  # length 100
        rng = np.random.default_rng(1)
        positions = random_positions(n, 2000, rng)
        long_edge = n.edge_between(0, 1).edge_id
        share = sum(1 for p in positions if p.edge_id == long_edge) / 2000
        assert 0.85 < share < 0.95


class TestPopulate:
    def test_counts_and_freeze(self, network):
        store = ObjectStore(network)
        populate_objects(store, 500, vocabulary_size=100, avg_keywords=5, seed=2)
        assert len(store) == 500
        for edge_id in store.edges_with_objects():
            offsets = [o.position.offset for o in store.objects_on_edge(edge_id)]
            assert offsets == sorted(offsets)

    def test_invalid_args(self, network):
        store = ObjectStore(network)
        with pytest.raises(DatasetError):
            populate_objects(store, 0, 10, 3)
        with pytest.raises(DatasetError):
            populate_objects(store, 10, 10, 0.5)

    def test_every_object_has_keywords(self, network):
        store = ObjectStore(network)
        populate_objects(store, 300, vocabulary_size=50, avg_keywords=2, seed=3)
        assert all(len(o.keywords) >= 1 for o in store)

    def test_determinism(self, network):
        a = ObjectStore(network)
        b = ObjectStore(network)
        populate_objects(a, 100, 50, 4, seed=7)
        populate_objects(b, 100, 50, 4, seed=7)
        for oa, ob in zip(a, b):
            assert oa.position == ob.position
            assert oa.keywords == ob.keywords

    def test_zipf_skew_visible(self, network):
        store = ObjectStore(network)
        populate_objects(
            store, 2000, vocabulary_size=200, avg_keywords=5, zipf_z=1.2,
            seed=4, num_topics=1,
        )
        freq = store.keyword_frequencies()
        ranked = sorted(freq.values(), reverse=True)
        assert ranked[0] > 10 * ranked[min(99, len(ranked) - 1)]

    def test_topics_create_cooccurrence(self, network):
        """Topic structure: two keywords of one object are far more
        likely to co-occur elsewhere than two independent keywords."""
        def cooccurrence_rate(num_topics, seed=5):
            store = ObjectStore(network)
            # Moderate skew: with very high z the global head already
            # co-occurs massively and the topic effect inverts.
            populate_objects(
                store, 1500, vocabulary_size=200, avg_keywords=6,
                zipf_z=0.8, seed=seed, num_topics=num_topics,
            )
            objects = list(store)
            rng = np.random.default_rng(0)
            hits = trials = 0
            for _ in range(300):
                obj = objects[int(rng.integers(0, len(objects)))]
                keys = sorted(obj.keywords)
                if len(keys) < 2:
                    continue
                pick = rng.choice(len(keys), size=2, replace=False)
                pair = {keys[int(pick[0])], keys[int(pick[1])]}
                trials += 1
                hits += sum(
                    1
                    for other in objects
                    if other.object_id != obj.object_id
                    and pair <= other.keywords
                )
            return hits / max(trials, 1)

        with_topics = cooccurrence_rate(num_topics=10)
        without = cooccurrence_rate(num_topics=1)
        assert with_topics > 2 * without

    def test_avg_keywords_close_to_target(self, network):
        store = ObjectStore(network)
        populate_objects(store, 1000, vocabulary_size=400, avg_keywords=8, seed=6)
        assert store.average_keywords_per_object() == pytest.approx(8, rel=0.15)
