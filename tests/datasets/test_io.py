"""Tests for dataset persistence and the cnode/cedge loader."""

import pytest

from repro.datasets.io import load_cnode_cedge, load_dataset, save_dataset
from repro.datasets.generator import populate_objects
from repro.datasets.synthetic import grid_network
from repro.errors import DatasetError
from repro.network.objects import ObjectStore


class TestCnodeCedge:
    def write_files(self, tmp_path, nodes, edges):
        cnode = tmp_path / "net.cnode"
        cedge = tmp_path / "net.cedge"
        cnode.write_text("\n".join(f"{i} {x} {y}" for i, x, y in nodes))
        cedge.write_text(
            "\n".join(f"{i} {a} {b} {d}" for i, (a, b, d) in enumerate(edges))
        )
        return cnode, cedge

    def test_roundtrip_basic(self, tmp_path):
        nodes = [(0, 0.0, 0.0), (1, 100.0, 0.0), (2, 100.0, 100.0)]
        edges = [(0, 1, 100.0), (1, 2, 100.0)]
        cnode, cedge = self.write_files(tmp_path, nodes, edges)
        network = load_cnode_cedge(cnode, cedge)
        assert network.num_nodes == 3
        assert network.num_edges == 2
        assert network.edge_between(0, 1).weight == pytest.approx(100.0)

    def test_skips_bad_edges(self, tmp_path):
        nodes = [(0, 0.0, 0.0), (1, 100.0, 0.0)]
        edges = [(0, 1, 100.0), (1, 1, 5.0), (0, 9, 10.0), (0, 1, 50.0)]
        cnode, cedge = self.write_files(tmp_path, nodes, edges)
        network = load_cnode_cedge(cnode, cedge)
        assert network.num_edges == 1  # self-loop, unknown node, dup skipped

    def test_max_nodes_truncation(self, tmp_path):
        nodes = [(i, float(i), 0.0) for i in range(10)]
        edges = [(i, i + 1, 1.0) for i in range(9)]
        cnode, cedge = self.write_files(tmp_path, nodes, edges)
        network = load_cnode_cedge(cnode, cedge, max_nodes=5)
        assert network.num_nodes == 5
        assert network.num_edges == 4

    def test_malformed_lines_raise(self, tmp_path):
        cnode = tmp_path / "bad.cnode"
        cnode.write_text("0 1")
        cedge = tmp_path / "bad.cedge"
        cedge.write_text("")
        with pytest.raises(DatasetError):
            load_cnode_cedge(cnode, cedge)

    def test_no_edges_raises(self, tmp_path):
        cnode, cedge = self.write_files(
            tmp_path, [(0, 0.0, 0.0), (1, 1.0, 0.0)], []
        )
        with pytest.raises(DatasetError):
            load_cnode_cedge(cnode, cedge)


class TestSnapshot:
    @pytest.fixture()
    def store(self):
        network = grid_network(5, 5, seed=2)
        store = ObjectStore(network)
        populate_objects(store, 200, vocabulary_size=40, avg_keywords=4, seed=3)
        return store

    def test_roundtrip_exact(self, tmp_path, store):
        path = tmp_path / "snapshot.json"
        save_dataset(store, path)
        loaded = load_dataset(path)
        assert len(loaded) == len(store)
        assert loaded.network.num_nodes == store.network.num_nodes
        assert loaded.network.num_edges == store.network.num_edges
        for a, b in zip(store, loaded):
            assert a.position == b.position
            assert a.keywords == b.keywords

    def test_loaded_store_is_queryable(self, tmp_path, store):
        from repro.core.database import Database

        path = tmp_path / "snapshot.json"
        save_dataset(store, path)
        loaded = load_dataset(path)
        # Rebuild a database around the loaded network and objects.
        db = Database(loaded.network, buffer_pages=64)
        for obj in loaded:
            db.add_object(obj.position, obj.keywords)
        db.freeze()
        index = db.build_index("sif")
        some = next(iter(db.store))
        from repro import SKQuery

        result = db.sk_search(
            index, SKQuery.create(some.position, sorted(some.keywords)[:1], 5000.0)
        )
        assert len(result) >= 1

    def test_not_a_snapshot(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(DatasetError):
            load_dataset(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dataset(tmp_path / "missing.json")
