"""Tests for the synthetic road-network generators."""

import pytest

from repro.datasets.synthetic import grid_network, random_planar_network
from repro.errors import DatasetError


def is_connected(network):
    seen = {0}
    stack = [0]
    while stack:
        node = stack.pop()
        for _e, other, _w in network.neighbors(node):
            if other not in seen:
                seen.add(other)
                stack.append(other)
    return len(seen) == network.num_nodes


class TestGrid:
    def test_counts(self):
        n = grid_network(10, 10, drop_prob=0.0, jitter=0.0)
        assert n.num_nodes == 100
        assert n.num_edges == 2 * 10 * 9

    def test_too_small_rejected(self):
        with pytest.raises(DatasetError):
            grid_network(1, 5)

    def test_always_connected(self):
        for seed in range(5):
            n = grid_network(8, 8, drop_prob=0.5, seed=seed)
            assert is_connected(n)

    def test_determinism(self):
        a = grid_network(6, 6, seed=3)
        b = grid_network(6, 6, seed=3)
        assert a.num_edges == b.num_edges
        for ea, eb in zip(a.edges(), b.edges()):
            assert (ea.n1, ea.n2) == (eb.n1, eb.n2)
            assert ea.weight == pytest.approx(eb.weight)

    def test_jitter_moves_interior_nodes(self):
        flat = grid_network(5, 5, jitter=0.0, seed=1)
        bumpy = grid_network(5, 5, jitter=0.4, seed=1)
        moved = sum(
            1
            for a, b in zip(flat.nodes(), bumpy.nodes())
            if a.point.distance_to(b.point) > 1.0
        )
        assert moved > 0

    def test_coordinates_within_extent(self):
        n = grid_network(7, 7, seed=2, extent=5000)
        for node in n.nodes():
            assert -1000 <= node.point.x <= 6000
            assert -1000 <= node.point.y <= 6000

    def test_validates(self):
        grid_network(6, 6, seed=4).validate()


class TestPlanar:
    def test_connected(self):
        for seed in range(4):
            n = random_planar_network(150, seed=seed)
            assert is_connected(n)

    def test_too_small_rejected(self):
        with pytest.raises(DatasetError):
            random_planar_network(1)

    def test_density_scales_with_neighbours(self):
        sparse = random_planar_network(200, neighbours=2, seed=1)
        dense = random_planar_network(200, neighbours=6, seed=1)
        assert dense.num_edges > sparse.num_edges

    def test_determinism(self):
        a = random_planar_network(80, seed=9)
        b = random_planar_network(80, seed=9)
        assert a.num_edges == b.num_edges

    def test_no_self_loops_or_duplicates(self):
        n = random_planar_network(120, seed=5)
        seen = set()
        for e in n.edges():
            assert e.n1 != e.n2
            assert (e.n1, e.n2) not in seen
            seen.add((e.n1, e.n2))

    def test_validates(self):
        random_planar_network(60, seed=7).validate()
