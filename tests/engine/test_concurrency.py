"""Acceptance: concurrent execution returns serial results exactly.

A 4-worker ``execute_many`` over a seeded workload must return, per
query, the same object ids, the same network distances and the same
diversification objective f(S) as the serial run — and the
interleaving-invariant metrics totals must match.  Buffer-dependent
numbers (physical vs buffered reads) legitimately vary with
interleaving; their *sum* (logical reads) must not.
"""

import pytest

from repro.engine import plan_diversified, plan_sk
from repro.errors import QueryError
from repro.network.distance import DistanceCache
from repro.obs.metrics import MetricsRegistry
from repro.workloads.queries import (
    WorkloadConfig,
    generate_diversified_queries,
    generate_sk_queries,
)
from repro.workloads.runner import run_sk_workload

#: Metrics that must be identical under any interleaving (per-query
#: work is independent when every query owns its pairwise computer).
INVARIANT_COUNTERS = (
    "query.count",
    "pairwise.dijkstra_runs",
    "distance_cache.hits",
    "distance_cache.misses",
    "distance_cache.evictions",
    "io.logical_reads",
)


class _ListSink:
    def __init__(self):
        self.records = []

    def emit(self, record):
        self.records.append(record)


@pytest.fixture(scope="module")
def sif(tiny_db):
    return tiny_db.build_index("sif", file_prefix="conc-sif")


@pytest.fixture(scope="module")
def div_queries(tiny_db):
    return generate_diversified_queries(
        tiny_db, WorkloadConfig(num_queries=12, num_keywords=2, k=5, seed=91)
    )


def _div_fingerprint(results):
    return [
        (
            [(it.object.object_id, it.distance) for it in r.items],
            r.objective_value,
        )
        for r in results
    ]


def _run_batch(db, plans, workers, cache=None):
    """Run the batch under a fresh metrics registry; return everything."""
    saved_metrics, saved_cache = db.metrics, db.distance_cache
    sink = _ListSink()
    try:
        db.metrics = MetricsRegistry()
        db.metrics.add_sink(sink)
        db.distance_cache = cache
        results = db.engine.execute_many(plans, workers=workers)
        return results, db.metrics.counters(), sink.records
    finally:
        db.metrics, db.distance_cache = saved_metrics, saved_cache


class TestConcurrentDeterminism:
    def test_diversified_batch_matches_serial(self, tiny_db, sif, div_queries):
        plans = [
            plan_diversified(tiny_db, sif, q, method="com")
            for q in div_queries
        ]
        loads0 = sif.lifetime_counters.objects_loaded
        serial, serial_counters, _ = _run_batch(tiny_db, plans, workers=1)
        serial_loads = sif.lifetime_counters.objects_loaded - loads0
        loads1 = sif.lifetime_counters.objects_loaded
        concurrent, conc_counters, records = _run_batch(
            tiny_db, plans, workers=4
        )
        concurrent_loads = sif.lifetime_counters.objects_loaded - loads1

        # Same answers: ids, distances, f(S), in plan order.
        assert _div_fingerprint(concurrent) == _div_fingerprint(serial)
        assert any(len(r.items) > 0 for r in serial)

        # Interleaving-invariant metrics totals match exactly.
        for name in INVARIANT_COUNTERS:
            assert conc_counters.get(name, 0) == serial_counters.get(name, 0), name
        assert conc_counters["query.count"] == len(div_queries)
        # The buffer split may move, but reads are never lost.
        for counters in (serial_counters, conc_counters):
            assert counters["io.logical_reads"] == (
                counters["io.physical_reads"] + counters["io.buffer_hits"]
            )
        # Index lifetime counters absorb the same work either way.
        assert concurrent_loads == serial_loads

        # Satellite: every emitted record carries the plan label.
        query_records = [r for r in records if r["type"] == "query"]
        assert len(query_records) == len(div_queries)
        assert {r["label"] for r in query_records} == {f"{sif.name}/COM"}
        assert {r["kind"] for r in query_records} == {"diversified/com"}

    def test_shared_cache_keeps_answers_identical(
        self, tiny_db, sif, div_queries
    ):
        plans = [
            plan_diversified(tiny_db, sif, q, method="seq")
            for q in div_queries
        ]
        serial, _, _ = _run_batch(
            tiny_db, plans, workers=1, cache=DistanceCache(max_entries=50_000)
        )
        concurrent, conc_counters, _ = _run_batch(
            tiny_db, plans, workers=4, cache=DistanceCache(max_entries=50_000)
        )
        # Cache hit/miss totals may shift with interleaving; answers not.
        assert _div_fingerprint(concurrent) == _div_fingerprint(serial)
        assert conc_counters["query.count"] == len(div_queries)

    def test_mixed_kind_batch(self, tiny_db, sif, div_queries):
        sk_queries = generate_sk_queries(
            tiny_db, WorkloadConfig(num_queries=6, num_keywords=2, seed=92)
        )
        plans = [plan_sk(tiny_db, sif, q) for q in sk_queries] + [
            plan_diversified(tiny_db, sif, q, method="com")
            for q in div_queries[:6]
        ]
        serial, serial_counters, _ = _run_batch(tiny_db, plans, workers=1)
        concurrent, conc_counters, records = _run_batch(
            tiny_db, plans, workers=3
        )
        sk_fp = lambda rs: [  # noqa: E731 — local helper
            [(it.object.object_id, it.distance) for it in r.items] for r in rs
        ]
        assert sk_fp(concurrent[:6]) == sk_fp(serial[:6])
        assert _div_fingerprint(concurrent[6:]) == _div_fingerprint(serial[6:])
        for name in INVARIANT_COUNTERS:
            assert conc_counters.get(name, 0) == serial_counters.get(name, 0), name
        labels = {r["label"] for r in records if r["type"] == "query"}
        assert labels == {f"{sif.name}/INE", f"{sif.name}/COM"}


class TestRunnerWorkers:
    def test_workload_report_matches_serial(self, tiny_db, sif):
        queries = generate_sk_queries(
            tiny_db, WorkloadConfig(num_queries=8, num_keywords=2, seed=93)
        )
        serial = run_sk_workload(tiny_db, sif, queries, label="serial")
        pooled = run_sk_workload(
            tiny_db, sif, queries, label="pooled", workers=4
        )
        assert pooled.total_results == serial.total_results
        assert pooled.total_candidates == serial.total_candidates
        assert pooled.total_objects_loaded == serial.total_objects_loaded
        assert pooled.workers == 4 and serial.workers == 1
        assert pooled.qps > 0 and serial.qps > 0
        row = pooled.row()
        assert row["workers"] == 4 and row["qps"] == round(pooled.qps, 1)

    def test_workers_validation(self, tiny_db, sif):
        queries = generate_sk_queries(
            tiny_db, WorkloadConfig(num_queries=2, num_keywords=2, seed=94)
        )
        with pytest.raises(QueryError):
            run_sk_workload(tiny_db, sif, queries, workers=0)
        with pytest.raises(QueryError):
            run_sk_workload(
                tiny_db, sif, queries, workers=2, cold_buffer=True
            )
        with pytest.raises(QueryError):
            tiny_db.engine.execute_many([], workers=0)
