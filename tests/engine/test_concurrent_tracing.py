"""Acceptance: tracing composes with concurrent execution.

A 4-worker ``execute_many`` with tracing enabled must produce one
independent, well-formed span tree per query (no cross-thread stack
tearing), return exactly the serial answers, and export a single valid
merged Chrome trace with one ``tid`` lane per worker thread.
"""

import json

import pytest

from repro.engine import plan_diversified, plan_sk
from repro.obs.export import chrome_trace, write_chrome_trace
from repro.obs.tracing import NULL_TRACER
from repro.workloads.queries import (
    WorkloadConfig,
    generate_diversified_queries,
    generate_sk_queries,
)


@pytest.fixture(scope="module")
def sif(tiny_db):
    return tiny_db.build_index("sif", file_prefix="ctrace-sif")


@pytest.fixture
def collector(tiny_db):
    collector = tiny_db.enable_tracing(max_traces=256)
    yield collector
    tiny_db.disable_tracing()


def _div_fingerprint(results):
    return [
        (
            [(it.object.object_id, it.distance) for it in r.items],
            r.objective_value,
        )
        for r in results
    ]


class TestConcurrentTracing:
    def test_one_well_formed_tree_per_query(
        self, tiny_db, sif, collector, tmp_path
    ):
        queries = generate_diversified_queries(
            tiny_db, WorkloadConfig(num_queries=10, num_keywords=2, k=5,
                                    seed=71)
        )
        plans = [
            plan_diversified(tiny_db, sif, q, method="com") for q in queries
        ]
        serial = tiny_db.engine.execute_many(plans, workers=1)
        serial_count = len(collector.records)
        assert serial_count == len(plans)
        collector.clear()

        concurrent = tiny_db.engine.execute_many(plans, workers=4)
        assert _div_fingerprint(concurrent) == _div_fingerprint(serial)

        records = collector.records
        assert len(records) == len(plans)
        for record in records:
            root = record.span
            assert root.name == "query.diversified"
            assert root.duration > 0
            assert root.attrs["method"] == "COM"
            # A well-formed tree: every child interval sits inside the
            # root's own window (shared collector origin).
            for child in root.walk():
                assert child.start >= 0
                assert child.duration >= 0
            assert record.worker.startswith("repro-query")
            assert record.lane >= 1

        # Queries were attributed to the pool's worker threads; at most
        # 4 lanes, and with 10 queries over 4 workers at least 2.
        lanes = {record.lane for record in records}
        assert 1 <= len(lanes) <= 4
        assert len(collector.workers) == len(lanes)

        # The merged Chrome trace: one thread_name metadata event per
        # worker lane, every span event on one of those lanes.
        path = write_chrome_trace(tmp_path / "merged.json", collector)
        doc = json.loads(path.read_text())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["tid"] for e in meta} == lanes
        assert all(e["args"]["name"].startswith("worker") for e in meta)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["tid"] for e in spans} == lanes
        assert sum(
            1 for e in spans if e["name"] == "query.diversified"
        ) == len(plans)

    def test_sk_batch_traced_concurrently(self, tiny_db, sif, collector):
        queries = generate_sk_queries(
            tiny_db, WorkloadConfig(num_queries=8, num_keywords=2, seed=72)
        )
        plans = [plan_sk(tiny_db, sif, q) for q in queries]
        results = tiny_db.engine.execute_many(plans, workers=4)
        assert len(results) == len(plans)
        roots = collector.traces
        assert len(roots) == len(plans)
        assert {root.name for root in roots} == {"query.sk"}
        # The per-query signature summary landed inside each tree.
        for root in roots:
            assert root.find("signature.filter") is not None

    def test_tracing_off_stays_null(self, tiny_db, sif):
        assert tiny_db.trace_collector is None
        assert tiny_db.tracer is NULL_TRACER
        queries = generate_sk_queries(
            tiny_db, WorkloadConfig(num_queries=2, num_keywords=2, seed=73)
        )
        plans = [plan_sk(tiny_db, sif, q) for q in queries]
        results = tiny_db.engine.execute_many(plans, workers=2)
        assert len(results) == 2

    def test_collector_bound_drops_oldest(self, tiny_db, sif):
        collector = tiny_db.enable_tracing(max_traces=3)
        try:
            queries = generate_sk_queries(
                tiny_db, WorkloadConfig(num_queries=5, num_keywords=2,
                                        seed=74)
            )
            plans = [plan_sk(tiny_db, sif, q) for q in queries]
            tiny_db.engine.execute_many(plans, workers=2)
            assert len(collector.records) == 3
            assert collector.dropped_traces == 2
        finally:
            tiny_db.disable_tracing()

    def test_chrome_trace_still_accepts_plain_tracer(self, tiny_db, sif):
        # The historic serial path (EXPLAIN) keeps per-query tids.
        queries = generate_sk_queries(
            tiny_db, WorkloadConfig(num_queries=1, num_keywords=2, seed=75)
        )
        report = tiny_db.explain(sif, queries[0])
        doc = chrome_trace([report.trace])
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
