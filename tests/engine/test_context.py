"""ExecutionContext: per-query state ownership and lifetime merges."""

import pytest

from repro.core.ine import INEExpansion
from repro.core.queries import QueryStats
from repro.engine import ExecutionContext, plan_sk
from repro.workloads.queries import WorkloadConfig, generate_sk_queries


@pytest.fixture(scope="module")
def sif(tiny_db):
    return tiny_db.build_index("sif", file_prefix="context-sif")


@pytest.fixture(scope="module")
def query(tiny_db):
    return generate_sk_queries(
        tiny_db, WorkloadConfig(num_queries=1, num_keywords=1, seed=19)
    )[0]


def _run_expansion(db, index, query):
    expansion = INEExpansion(
        db.ccam, db.network, index, query.position, query.terms,
        query.delta_max,
    )
    return expansion.run_to_completion()


class TestStateRouting:
    def test_context_owns_counters_and_io(self, tiny_db, sif, query):
        plan = plan_sk(tiny_db, sif, query)
        loads_before = sif.lifetime_counters.objects_loaded
        global_reads_before = tiny_db.disk.stats.snapshot().logical_reads

        with ExecutionContext(tiny_db, plan) as ctx:
            # The index routes this thread's counters into the context.
            assert sif.counters is ctx.counters
            _run_expansion(tiny_db, sif, query)
            assert ctx.io_scope.logical_reads > 0
            # Shared lifetime state is untouched while the query runs.
            assert sif.lifetime_counters.objects_loaded == loads_before
            per_query_loads = ctx.counters.objects_loaded
            per_query_reads = ctx.io_scope.logical_reads

        # On exit the execution's work is folded into the lifetime totals.
        assert sif.counters is sif.lifetime_counters
        assert sif.lifetime_counters.objects_loaded == (
            loads_before + per_query_loads
        )
        assert tiny_db.disk.stats.snapshot().logical_reads == (
            global_reads_before + per_query_reads
        )

    def test_finalise_fills_stats_from_context(self, tiny_db, sif, query):
        plan = plan_sk(tiny_db, sif, query)
        with ExecutionContext(tiny_db, plan) as ctx:
            _run_expansion(tiny_db, sif, query)
            stats = QueryStats()
            ctx.finalise(stats)
            assert stats.io.logical_reads == ctx.io_scope.logical_reads
            assert stats.objects_loaded == ctx.counters.objects_loaded
            assert stats.false_hit_objects == ctx.counters.false_hit_objects
            assert stats.buffer_evictions == ctx.buffer_scope.evictions
            assert "signature" in stats.stage_seconds

    def test_finalise_outside_context_raises(self, tiny_db, sif, query):
        ctx = ExecutionContext(tiny_db, plan_sk(tiny_db, sif, query))
        with pytest.raises(RuntimeError):
            ctx.finalise(QueryStats())


class TestExceptionSafety:
    def test_slot_popped_when_query_raises(self, tiny_db, sif, query):
        plan = plan_sk(tiny_db, sif, query)
        with pytest.raises(RuntimeError, match="boom"):
            with ExecutionContext(tiny_db, plan):
                assert sif.counters is not sif.lifetime_counters
                raise RuntimeError("boom")
        # The thread-local slot is gone; reads resolve to lifetime state.
        assert sif.counters is sif.lifetime_counters

    def test_contexts_nest_per_thread(self, tiny_db, sif, query):
        plan = plan_sk(tiny_db, sif, query)
        with ExecutionContext(tiny_db, plan) as outer:
            with ExecutionContext(tiny_db, plan) as inner:
                assert sif.counters is inner.counters
            assert sif.counters is outer.counters
        assert sif.counters is sif.lifetime_counters
