"""The DistanceBackend seam: dijkstra vs CH through the full engine.

The acceptance bar for the CH backend is *identical answers* — same
object ids, same objective values — on every SK/diversified scenario,
with the backend visible in plans, stats, metrics records, slow-query
logs and Prometheus exports.
"""

import math

import pytest

from repro.core.database import Database
from repro.core.queries import DiversifiedSKQuery
from repro.datasets.synthetic import random_planar_network
from repro.errors import QueryError
from repro.obs.export import database_gauges, prometheus_text
from repro.obs.slowlog import SlowQueryThreshold
from repro.workloads.queries import WorkloadConfig, generate_diversified_queries


@pytest.fixture()
def restore_backend(tiny_db):
    """Leave the session-scoped database on the default backend."""
    yield tiny_db
    tiny_db.use_distance_backend("dijkstra")


def _run_workload(db, index, queries, method):
    out = []
    for query in queries:
        result = db.diversified_search(index, query, method=method)
        out.append(
            (result.object_ids(), round(result.objective_value, 9))
        )
    return out


class TestBackendSelection:
    def test_unknown_backend_rejected(self, restore_backend):
        with pytest.raises(QueryError):
            restore_backend.use_distance_backend("astar")

    def test_constructor_selects_backend(self):
        db = Database(random_planar_network(30, seed=2),
                      distance_backend="ch")
        assert db.distance_backend == "ch"
        assert db.pairwise_backend() is db.ch_oracle()

    def test_default_is_dijkstra(self, tiny_db):
        assert tiny_db.distance_backend == "dijkstra"
        assert tiny_db.pairwise_backend() is None

    def test_oracle_built_once_and_recorded(self, restore_backend):
        db = restore_backend
        db.use_distance_backend("ch")
        oracle = db.ch_oracle()
        assert db.ch_oracle() is oracle
        counters = db.metrics.snapshot()["counters"]
        assert counters["ch.shortcuts_added"] == oracle.shortcuts_added
        assert counters["ch.upward_edges"] == oracle.upward_edges


class TestAnswerEquivalence:
    def test_seq_and_com_identical_across_backends(
        self, restore_backend, tiny_indexes
    ):
        db = restore_backend
        index = tiny_indexes["sif"]
        config = WorkloadConfig(
            num_queries=8, num_keywords=2, k=5, seed=71
        )
        queries = generate_diversified_queries(db, config)
        before = db.metrics.snapshot()["counters"]
        db.use_distance_backend("dijkstra")
        want = {
            method: _run_workload(db, index, queries, method)
            for method in ("seq", "com")
        }
        db.use_distance_backend("ch")
        got = {
            method: _run_workload(db, index, queries, method)
            for method in ("seq", "com")
        }
        assert got == want
        # The session-shared registry may carry earlier tests' queries:
        # compare the per-backend counter *deltas* of this workload.
        after = db.metrics.snapshot()["counters"]

        def delta(name):
            return after.get(name, 0) - before.get(name, 0)

        assert delta("query.backend.ch") == 2 * len(queries)
        assert delta("query.backend.ch") == delta("query.backend.dijkstra")

    def test_stats_carry_backend_counters(self, restore_backend, tiny_indexes):
        db = restore_backend
        db.use_distance_backend("ch")
        index = tiny_indexes["sif"]
        config = WorkloadConfig(num_queries=4, num_keywords=2, k=5, seed=71)
        stats = [
            db.diversified_search(index, q, method="seq").stats
            for q in generate_diversified_queries(db, config)
        ]
        assert all(s.distance_backend == "ch" for s in stats)
        # At least one query in the batch has >= 2 candidates and so
        # issued CH work; its settled-node counter must move too.
        busy = [s for s in stats if s.backend_queries]
        assert busy
        assert all(s.backend_settled_nodes > 0 for s in busy)
        assert all(s.pairwise_dijkstras == 0 for s in stats)

    def test_plan_records_backend(self, restore_backend, tiny_indexes):
        db = restore_backend
        index = tiny_indexes["sif"]
        query = DiversifiedSKQuery.create(
            db.network.node_position(0), ["a"], delta_max=1000.0, k=3
        )
        db.use_distance_backend("ch")
        plan = db.plan(index, query, method="com")
        assert plan.hints.distance_backend == "ch"
        assert "distance backend: ch" in plan.describe()
        db.use_distance_backend("dijkstra")
        plan = db.plan(index, query, method="com")
        assert plan.hints.distance_backend == "dijkstra"
        assert "distance backend: dijkstra" in plan.describe()


class TestObservability:
    def test_slowlog_records_backend(self, restore_backend, tiny_indexes):
        db = restore_backend
        db.use_distance_backend("ch")
        log = db.enable_slow_query_log(latency_seconds=0.0)
        try:
            index = tiny_indexes["sif"]
            config = WorkloadConfig(
                num_queries=2, num_keywords=2, k=4, seed=71
            )
            for query in generate_diversified_queries(db, config):
                db.diversified_search(index, query, method="com")
            records = log.records()
            assert records
            for record in records:
                assert record["distance_backend"] == "ch"
                assert record["stats"]["distance_backend"] == "ch"
                assert "backend_settled_nodes" in record["stats"]
        finally:
            db.disable_slow_query_log()

    def test_prometheus_gauges_carry_backend(self, restore_backend):
        db = restore_backend
        db.use_distance_backend("ch")
        db.ch_oracle()
        gauges = database_gauges(db)
        assert gauges["distance_backend.ch"] == 1.0
        assert gauges["distance_backend.dijkstra"] == 0.0
        assert gauges["ch.shortcuts_added"] >= 0.0
        assert gauges["ch.preprocess_seconds"] > 0.0
        text = prometheus_text(db.metrics, gauges=gauges)
        assert "repro_distance_backend_ch 1.0" in text
        assert "repro_ch_preprocess_seconds" in text

    def test_dijkstra_run_exports_zero_ch_gauge(self, tiny_db):
        gauges = database_gauges(tiny_db)
        assert gauges["distance_backend.dijkstra"] == 1.0
        assert gauges["distance_backend.ch"] == 0.0

    def test_explain_renders_backend(self, restore_backend, tiny_indexes):
        db = restore_backend
        db.use_distance_backend("ch")
        query = DiversifiedSKQuery.create(
            db.network.node_position(3),
            ["a"],
            delta_max=2000.0,
            k=3,
        )
        report = db.explain(
            tiny_indexes["sif"], query, method="com",
            slow_threshold=SlowQueryThreshold(latency_seconds=math.inf),
        )
        rendered = report.render()
        assert "distance backend: ch" in rendered
