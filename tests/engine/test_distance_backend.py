"""The DistanceBackend seam: dijkstra vs CH vs hub through the engine.

The acceptance bar for the oracle backends is *identical answers* —
same object ids, same objective values — on every SK/diversified
scenario, with the backend visible in plans, stats, metrics records,
slow-query logs and Prometheus exports.
"""

import math

import pytest

from repro.core.database import Database
from repro.core.queries import DiversifiedSKQuery
from repro.datasets.synthetic import random_planar_network
from repro.errors import QueryError
from repro.network.graph import NetworkPosition
from repro.obs.export import database_gauges, prometheus_text
from repro.obs.slowlog import SlowQueryThreshold
from repro.workloads.queries import WorkloadConfig, generate_diversified_queries


@pytest.fixture()
def restore_backend(tiny_db):
    """Leave the session-scoped database on the default backend."""
    yield tiny_db
    tiny_db.use_distance_backend("dijkstra")


def _run_workload(db, index, queries, method):
    out = []
    for query in queries:
        result = db.diversified_search(index, query, method=method)
        out.append(
            (result.object_ids(), round(result.objective_value, 9))
        )
    return out


class TestBackendSelection:
    def test_unknown_backend_rejected(self, restore_backend):
        with pytest.raises(QueryError):
            restore_backend.use_distance_backend("astar")

    def test_constructor_selects_backend(self):
        db = Database(random_planar_network(30, seed=2),
                      distance_backend="ch")
        assert db.distance_backend == "ch"
        assert db.pairwise_backend() is db.ch_oracle()

    def test_default_is_dijkstra(self, tiny_db):
        assert tiny_db.distance_backend == "dijkstra"
        assert tiny_db.pairwise_backend() is None

    def test_oracle_built_once_and_recorded(self, restore_backend):
        db = restore_backend
        db.use_distance_backend("ch")
        oracle = db.ch_oracle()
        assert db.ch_oracle() is oracle
        counters = db.metrics.snapshot()["counters"]
        assert counters["ch.shortcuts_added"] == oracle.shortcuts_added
        assert counters["ch.upward_edges"] == oracle.upward_edges

    def test_hub_backend_selected_and_recorded(self, restore_backend):
        db = restore_backend
        db.use_distance_backend("hub")
        oracle = db.hub_oracle()
        assert db.pairwise_backend() is oracle
        assert db.hub_oracle() is oracle  # built once
        # The labels reuse the database's CH (same ordering, no second
        # preprocessing pass).
        assert oracle.ch is db.ch_oracle()
        counters = db.metrics.snapshot()["counters"]
        assert counters["hub_label.labels"] == oracle.num_labels
        assert counters["hub_label.label_entries"] == oracle.label_entries

    def test_constructor_selects_hub(self):
        db = Database(random_planar_network(30, seed=2),
                      distance_backend="hub")
        assert db.distance_backend == "hub"
        assert db.pairwise_backend() is db.hub_oracle()

    def test_unknown_scoring_mode_rejected(self, restore_backend):
        with pytest.raises(QueryError):
            restore_backend.use_scoring_mode("gpu")

    def test_scoring_mode_roundtrip(self, restore_backend):
        db = restore_backend
        assert db.scoring_mode == "array"  # numpy is available in tests
        db.use_scoring_mode("scalar")
        assert db.scoring_mode == "scalar"
        db.use_scoring_mode("array")
        assert db.scoring_mode == "array"


class TestAnswerEquivalence:
    def test_seq_and_com_identical_across_backends(
        self, restore_backend, tiny_indexes
    ):
        db = restore_backend
        index = tiny_indexes["sif"]
        config = WorkloadConfig(
            num_queries=8, num_keywords=2, k=5, seed=71
        )
        queries = generate_diversified_queries(db, config)
        before = db.metrics.snapshot()["counters"]
        db.use_distance_backend("dijkstra")
        want = {
            method: _run_workload(db, index, queries, method)
            for method in ("seq", "com")
        }
        db.use_distance_backend("ch")
        got = {
            method: _run_workload(db, index, queries, method)
            for method in ("seq", "com")
        }
        assert got == want
        # The session-shared registry may carry earlier tests' queries:
        # compare the per-backend counter *deltas* of this workload.
        after = db.metrics.snapshot()["counters"]

        def delta(name):
            return after.get(name, 0) - before.get(name, 0)

        assert delta("query.backend.ch") == 2 * len(queries)
        assert delta("query.backend.ch") == delta("query.backend.dijkstra")

    def test_all_three_backends_and_both_scorings_agree(
        self, restore_backend, tiny_indexes
    ):
        """The full cross product — {dijkstra, ch, hub} × {scalar,
        array} — returns byte-identical object ids and objective values
        (rounded to 9 decimals, the repo's equivalence contract)."""
        db = restore_backend
        index = tiny_indexes["sif"]
        config = WorkloadConfig(num_queries=6, num_keywords=2, k=5, seed=83)
        queries = generate_diversified_queries(db, config)
        results = {}
        try:
            for backend in ("dijkstra", "ch", "hub"):
                db.use_distance_backend(backend)
                for scoring in ("scalar", "array"):
                    db.use_scoring_mode(scoring)
                    for method in ("seq", "com"):
                        results[(backend, scoring, method)] = _run_workload(
                            db, index, queries, method
                        )
        finally:
            db.use_scoring_mode("array")
        baseline_seq = results[("dijkstra", "scalar", "seq")]
        baseline_com = results[("dijkstra", "scalar", "com")]
        for (backend, scoring, method), got in results.items():
            want = baseline_seq if method == "seq" else baseline_com
            assert got == want, (backend, scoring, method)

    def test_hub_stats_carry_backend_counters(
        self, restore_backend, tiny_indexes
    ):
        db = restore_backend
        db.use_distance_backend("hub")
        index = tiny_indexes["sif"]
        config = WorkloadConfig(num_queries=4, num_keywords=2, k=5, seed=71)
        stats = [
            db.diversified_search(index, q, method="seq").stats
            for q in generate_diversified_queries(db, config)
        ]
        assert all(s.distance_backend == "hub" for s in stats)
        busy = [s for s in stats if s.backend_queries]
        assert busy
        # settled_nodes carries label entries scanned; bucket_hits the
        # label-join kernel hits; no Dijkstra ran at all.
        assert all(s.backend_settled_nodes > 0 for s in busy)
        assert any(s.backend_bucket_hits > 0 for s in busy)
        assert all(s.pairwise_dijkstras == 0 for s in stats)
        counters = db.metrics.snapshot()["counters"]
        assert counters["hub_label.queries"] >= sum(
            s.backend_queries for s in busy
        )
        assert counters["hub_label.kernel_hits"] > 0

    def test_stats_carry_backend_counters(self, restore_backend, tiny_indexes):
        db = restore_backend
        db.use_distance_backend("ch")
        index = tiny_indexes["sif"]
        config = WorkloadConfig(num_queries=4, num_keywords=2, k=5, seed=71)
        stats = [
            db.diversified_search(index, q, method="seq").stats
            for q in generate_diversified_queries(db, config)
        ]
        assert all(s.distance_backend == "ch" for s in stats)
        # At least one query in the batch has >= 2 candidates and so
        # issued CH work; its settled-node counter must move too.
        busy = [s for s in stats if s.backend_queries]
        assert busy
        assert all(s.backend_settled_nodes > 0 for s in busy)
        assert all(s.pairwise_dijkstras == 0 for s in stats)

    def test_plan_records_backend(self, restore_backend, tiny_indexes):
        db = restore_backend
        index = tiny_indexes["sif"]
        query = DiversifiedSKQuery.create(
            db.network.node_position(0), ["a"], delta_max=1000.0, k=3
        )
        db.use_distance_backend("ch")
        plan = db.plan(index, query, method="com")
        assert plan.hints.distance_backend == "ch"
        assert "distance backend: ch" in plan.describe()
        db.use_distance_backend("dijkstra")
        plan = db.plan(index, query, method="com")
        assert plan.hints.distance_backend == "dijkstra"
        assert "distance backend: dijkstra" in plan.describe()


class TestObservability:
    def test_slowlog_records_backend(self, restore_backend, tiny_indexes):
        db = restore_backend
        db.use_distance_backend("ch")
        log = db.enable_slow_query_log(latency_seconds=0.0)
        try:
            index = tiny_indexes["sif"]
            config = WorkloadConfig(
                num_queries=2, num_keywords=2, k=4, seed=71
            )
            for query in generate_diversified_queries(db, config):
                db.diversified_search(index, query, method="com")
            records = log.records()
            assert records
            for record in records:
                assert record["distance_backend"] == "ch"
                assert record["stats"]["distance_backend"] == "ch"
                assert "backend_settled_nodes" in record["stats"]
        finally:
            db.disable_slow_query_log()

    def test_prometheus_gauges_carry_backend(self, restore_backend):
        db = restore_backend
        db.use_distance_backend("ch")
        db.ch_oracle()
        gauges = database_gauges(db)
        assert gauges["distance_backend.ch"] == 1.0
        assert gauges["distance_backend.dijkstra"] == 0.0
        assert gauges["ch.shortcuts_added"] >= 0.0
        assert gauges["ch.preprocess_seconds"] > 0.0
        text = prometheus_text(db.metrics, gauges=gauges)
        assert "repro_distance_backend_ch 1.0" in text
        assert "repro_ch_preprocess_seconds" in text

    def test_dijkstra_run_exports_zero_ch_gauge(self, tiny_db):
        gauges = database_gauges(tiny_db)
        assert gauges["distance_backend.dijkstra"] == 1.0
        assert gauges["distance_backend.ch"] == 0.0

    def test_explain_renders_backend(self, restore_backend, tiny_indexes):
        db = restore_backend
        db.use_distance_backend("ch")
        query = DiversifiedSKQuery.create(
            db.network.node_position(3),
            ["a"],
            delta_max=2000.0,
            k=3,
        )
        report = db.explain(
            tiny_indexes["sif"], query, method="com",
            slow_threshold=SlowQueryThreshold(latency_seconds=math.inf),
        )
        rendered = report.render()
        assert "distance backend: ch" in rendered

    def test_prometheus_gauges_carry_hub_stats(self, restore_backend):
        db = restore_backend
        db.use_distance_backend("hub")
        db.hub_oracle()
        gauges = database_gauges(db)
        assert gauges["distance_backend.hub"] == 1.0
        assert gauges["distance_backend.dijkstra"] == 0.0
        assert gauges["hub_label.labels"] == db.network.num_nodes
        assert gauges["hub_label.label_entries"] > 0
        assert gauges["hub_label.avg_label_size"] >= 1.0
        assert gauges["scoring_mode.array"] == 1.0
        text = prometheus_text(db.metrics, gauges=gauges)
        assert "repro_distance_backend_hub 1.0" in text
        assert "repro_hub_label_label_entries" in text

    def test_explain_narrates_hub_kernel(self, restore_backend, tiny_indexes):
        db = restore_backend
        db.use_distance_backend("hub")
        query = DiversifiedSKQuery.create(
            db.network.node_position(3),
            ["a"],
            delta_max=2000.0,
            k=3,
        )
        report = db.explain(
            tiny_indexes["sif"], query, method="seq",
            slow_threshold=SlowQueryThreshold(latency_seconds=math.inf),
        )
        rendered = report.render()
        assert "distance backend: hub" in rendered
        assert "scoring: array" in rendered
        # The many-to-many prefetch span narrates label-entry scans and
        # kernel hits through the hub-specific formatter.
        if "hub-label kernel" in rendered:
            assert "kernel hits" in rendered


class TestHubUpdateInteraction:
    """Reweight/insert/delete under the hub backend never serve stale
    distances — the oracle drops at commit and rebuilds lazily."""

    def _fresh_db(self, seed=41):
        network = random_planar_network(60, seed=seed)
        db = Database(network, buffer_pages=64, distance_backend="hub")
        import numpy as np

        rng = np.random.default_rng(seed)
        edges = list(network.edges())
        vocab = ["cafe", "fuel", "park"]
        for _ in range(90):
            e = edges[int(rng.integers(len(edges)))]
            db.add_object(
                NetworkPosition(e.edge_id, float(rng.uniform(0, e.weight))),
                [vocab[int(rng.integers(len(vocab)))]],
            )
        db.freeze()
        index = db.build_index("sif", file_prefix=f"hub-upd-{seed}")
        query = DiversifiedSKQuery.create(
            NetworkPosition(edges[3].edge_id, edges[3].weight / 2),
            ["cafe"], delta_max=10_000.0, k=4, lambda_=0.7,
        )
        return db, index, query, edges

    def _assert_matches_dijkstra(self, db, index, query):
        got = db.diversified_search(index, query, method="seq")
        db.use_distance_backend("dijkstra")
        want = db.diversified_search(index, query, method="seq")
        db.use_distance_backend("hub")
        assert got.object_ids() == want.object_ids()
        assert got.objective_value == pytest.approx(want.objective_value)

    def test_reweight_triggers_lazy_rebuild(self):
        db, index, query, edges = self._fresh_db()
        db.diversified_search(index, query, method="seq")
        oracle = db._hub_oracle
        assert oracle is not None
        db.update_edge_weight(edges[0].edge_id, edges[0].weight * 2.5)
        assert db._hub_oracle is None
        assert db.metrics.counters()["hub_label.invalidations"] == 1
        self._assert_matches_dijkstra(db, index, query)
        assert db._hub_oracle is not None
        assert db._hub_oracle is not oracle

    def test_insert_and_delete_stay_correct(self):
        db, index, query, edges = self._fresh_db(seed=43)
        db.hub_oracle()
        obj = db.insert_object(
            NetworkPosition(query.position.edge_id, 1.0),
            ["cafe"], indexes=(index,),
        )
        # Object updates leave network distances untouched: the oracle
        # survives, and the new object is answerable through it.
        assert db._hub_oracle is not None
        self._assert_matches_dijkstra(db, index, query)
        db.delete_object(obj.object_id, indexes=(index,))
        assert db._hub_oracle is not None
        self._assert_matches_dijkstra(db, index, query)

    def test_epoch_sequence_of_mixed_updates(self):
        db, index, query, edges = self._fresh_db(seed=47)
        for i, factor in enumerate((1.5, 0.6, 2.0)):
            edge = db.network.edge(edges[i].edge_id)
            db.update_edge_weight(edge.edge_id, edge.weight * factor)
            self._assert_matches_dijkstra(db, index, query)
        assert db.metrics.counters()["hub_label.invalidations"] >= 1
