"""Planner behaviour: cost hints, algorithm choice, plan rendering."""

import pytest

from repro.core.knn import SKkNNQuery
from repro.core.queries import DiversifiedSKQuery
from repro.engine import QueryPlan, plan_diversified, plan_knn, plan_sk
from repro.errors import QueryError
from repro.workloads.queries import (
    WorkloadConfig,
    generate_diversified_queries,
    generate_sk_queries,
)


@pytest.fixture(scope="module")
def sif(tiny_db):
    return tiny_db.build_index("sif", file_prefix="planner-sif")


@pytest.fixture(scope="module")
def sk_query(tiny_db):
    return generate_sk_queries(
        tiny_db, WorkloadConfig(num_queries=1, num_keywords=2, seed=7)
    )[0]


@pytest.fixture(scope="module")
def div_query(tiny_db):
    return generate_diversified_queries(
        tiny_db, WorkloadConfig(num_queries=1, num_keywords=2, k=4, seed=7)
    )[0]


class TestCostHints:
    def test_hints_derive_from_catalogue(self, tiny_db, sif, sk_query):
        plan = plan_sk(tiny_db, sif, sk_query)
        h = plan.hints
        assert h.num_objects == len(tiny_db.store)
        assert h.num_edges == tiny_db.network.num_edges
        assert {t for t, _ in h.term_frequencies} == set(sk_query.terms)
        freqs = [df for _, df in h.term_frequencies]
        assert freqs == sorted(freqs)  # rarest first
        assert h.rarest_term == h.term_frequencies[0][0]
        # Independence estimate never exceeds the rarest term's df.
        assert h.estimated_matches <= min(freqs) + 1e-9
        assert 0.0 <= h.selectivity <= 1.0

    def test_planning_is_pure_metadata(self, tiny_db, sif, sk_query):
        before = tiny_db.metrics.counters().get("query.count", 0)
        plan_sk(tiny_db, sif, sk_query)
        assert tiny_db.metrics.counters().get("query.count", 0) == before


class TestPlanShapes:
    def test_sk_plan(self, tiny_db, sif, sk_query):
        plan = plan_sk(tiny_db, sif, sk_query)
        assert plan.kind == "sk"
        assert plan.algorithm == "ine"
        assert plan.label == f"{sif.name}/INE"
        text = plan.describe()
        assert "QUERY PLAN" in text and plan.label in text
        assert "cost hints" in text

    def test_knn_plan(self, tiny_db, sif, div_query):
        query = SKkNNQuery.create(div_query.position, div_query.terms, k=3)
        plan = plan_knn(tiny_db, sif, query)
        assert plan.kind == "knn"
        assert plan.label.endswith("/INE-KNN")
        assert "k=3" in plan.describe()

    def test_database_plan_dispatch(self, tiny_db, sif, sk_query, div_query):
        assert tiny_db.plan(sif, sk_query).kind == "sk"
        assert tiny_db.plan(sif, div_query).kind == "diversified"
        knn = SKkNNQuery.create(div_query.position, div_query.terms, k=2)
        assert tiny_db.plan(sif, knn).kind == "knn"

    def test_invalid_algorithm_rejected(self, sif, sk_query):
        with pytest.raises(QueryError):
            QueryPlan(kind="sk", query=sk_query, index=sif, algorithm="com")
        with pytest.raises(QueryError):
            QueryPlan(kind="nope", query=sk_query, index=sif, algorithm="ine")


class TestDiversifiedChoice:
    def test_forced_method_wins(self, tiny_db, sif, div_query):
        for method in ("seq", "com", "COM"):
            plan = plan_diversified(tiny_db, sif, div_query, method=method)
            assert plan.algorithm == method.lower()
            assert "forced" in plan.rationale

    def test_bad_method_rejected(self, tiny_db, sif, div_query):
        with pytest.raises(QueryError):
            plan_diversified(tiny_db, sif, div_query, method="greedy")

    def test_auto_picks_seq_on_tiny_candidate_stream(self, tiny_db, sif, div_query):
        rare = DiversifiedSKQuery.create(
            div_query.position, ("zz-not-in-vocab", "zz-neither"),
            delta_max=div_query.delta_max, k=4,
        )
        plan = plan_diversified(tiny_db, sif, rare)
        assert plan.algorithm == "seq"
        assert plan.hints.estimated_matches == 0.0

    def test_auto_picks_com_on_large_candidate_stream(self, tiny_db, sif, div_query):
        term, df = max(
            tiny_db.keyword_frequencies().items(), key=lambda kv: kv[1]
        )
        assert df > 4  # the fixture vocabulary is Zipfian; heads are fat
        common = DiversifiedSKQuery.create(
            div_query.position, (term,), delta_max=div_query.delta_max, k=2,
        )
        plan = plan_diversified(tiny_db, sif, common)
        assert plan.algorithm == "com"
        assert plan.hints.estimated_matches == pytest.approx(df)

    def test_plan_carries_execution_knobs(self, tiny_db, sif, div_query):
        plan = plan_diversified(
            tiny_db, sif, div_query, method="com", enable_pruning=False,
        )
        assert plan.enable_pruning is False
        assert plan.landmarks is None
