"""Semantic result cache: journal-validated survival across updates."""

import pytest

from repro import Database, NetworkPosition
from repro.core.queries import DiversifiedSKQuery
from repro.engine.plan import plan_diversified
from repro.engine.result_cache import PAIRWISE_RADIUS_FACTOR, ResultCache


@pytest.fixture()
def cached_db(grid_network9):
    db = Database(grid_network9, buffer_pages=64)
    db.add_object(NetworkPosition(0, 20.0), {"pizza"})
    db.add_object(NetworkPosition(3, 50.0), {"pizza", "bar"})
    db.add_object(NetworkPosition(8, 30.0), {"sushi"})
    db.freeze()
    db.use_result_cache(max_entries=8)
    return db


def run(db, index, query, method="seq"):
    return db.engine.execute(plan_diversified(db, index, query, method=method))


def make_query(terms=("pizza",), delta_max=500.0, k=2):
    return DiversifiedSKQuery.create(
        NetworkPosition(0, 0.0), list(terms), delta_max, k, 0.8
    )


class TestHitAndMiss:
    def test_repeat_query_hits(self, cached_db):
        index = cached_db.build_index("sif")
        q = make_query()
        first = run(cached_db, index, q)
        assert first.stats.result_cache_hit is False
        second = run(cached_db, index, q)
        assert second.stats.result_cache_hit is True
        assert second.object_ids() == first.object_ids()
        assert second.objective_value == first.objective_value
        stats = cached_db.result_cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert cached_db.metrics.counters()["query.result_cache_hits"] == 1

    def test_key_includes_lambda_k_and_algorithm(self, cached_db):
        index = cached_db.build_index("sif")
        run(cached_db, index, make_query())
        assert run(cached_db, index, make_query(k=3)).stats.result_cache_hit is False
        other_lambda = DiversifiedSKQuery.create(
            NetworkPosition(0, 0.0), ["pizza"], 500.0, 2, 0.3
        )
        assert run(cached_db, index, other_lambda).stats.result_cache_hit is False
        assert (
            run(cached_db, index, make_query(), method="com")
            .stats.result_cache_hit
            is False
        )

    def test_lru_eviction(self, cached_db):
        cached_db.result_cache = ResultCache(max_entries=2)
        index = cached_db.build_index("sif")
        q1, q2, q3 = (
            make_query(delta_max=d) for d in (400.0, 500.0, 600.0)
        )
        for q in (q1, q2, q3):
            run(cached_db, index, q)
        assert cached_db.result_cache.stats()["evictions"] == 1
        # q1 was evicted; q2/q3 still hit.
        assert run(cached_db, index, q2).stats.result_cache_hit is True
        assert run(cached_db, index, q1).stats.result_cache_hit is False


class TestSurvival:
    def test_survives_keyword_irrelevant_insert(self, cached_db):
        index = cached_db.build_index("sif")
        q = make_query()
        run(cached_db, index, q)
        # Nearby object without the query keyword: AND semantics make it
        # irrelevant no matter how close it is.
        cached_db.insert_object(
            NetworkPosition(0, 10.0), {"sushi"}, indexes=(index,)
        )
        assert run(cached_db, index, q).stats.result_cache_hit is True
        assert cached_db.result_cache.stats()["invalidated"] == 0

    def test_survives_spatially_far_insert(self, cached_db):
        index = cached_db.build_index("sif")
        q = make_query(delta_max=50.0)
        run(cached_db, index, q)
        # Matching keywords, but well past delta_max even under the
        # conservative Euclidean lower bound.
        cached_db.insert_object(
            NetworkPosition(11, 50.0), {"pizza"}, indexes=(index,)
        )
        assert run(cached_db, index, q).stats.result_cache_hit is True

    def test_survives_far_edge_reweight(self, cached_db):
        index = cached_db.build_index("sif")
        q = make_query(delta_max=30.0)
        run(cached_db, index, q)
        # Edge 11 is the far corner of the grid; with delta_max=30 the
        # pairwise radius is ~90, far short of it.
        far = cached_db.network.edge(11)
        assert (
            cached_db.min_weight_per_length()
            * cached_db.network.position_point(q.position).distance_to(far.p1)
            > PAIRWISE_RADIUS_FACTOR * q.delta_max
        )
        cached_db.update_edge_weight(11, far.weight * 2.0)
        assert run(cached_db, index, q).stats.result_cache_hit is True

    def test_surviving_probe_advances_entry_epoch(self, cached_db):
        index = cached_db.build_index("sif")
        q = make_query()
        run(cached_db, index, q)
        cached_db.insert_object(
            NetworkPosition(0, 10.0), {"sushi"}, indexes=(index,)
        )
        run(cached_db, index, q)  # survives, advances valid_epoch
        entry = next(iter(cached_db.result_cache._entries.values()))
        assert entry.valid_epoch == cached_db.data_version


class TestInvalidation:
    def test_relevant_insert_invalidates(self, cached_db):
        index = cached_db.build_index("sif")
        q = make_query()
        stale = run(cached_db, index, q)
        inserted = cached_db.insert_object(
            NetworkPosition(0, 10.0), {"pizza", "extra"}, indexes=(index,)
        )
        fresh = run(cached_db, index, q)
        assert fresh.stats.result_cache_hit is False
        assert inserted.object_id in fresh.object_ids()
        assert inserted.object_id not in stale.object_ids()
        assert cached_db.result_cache.stats()["invalidated"] == 1

    def test_relevant_delete_invalidates(self, cached_db):
        index = cached_db.build_index("sif")
        q = make_query()
        stale = run(cached_db, index, q)
        victim = stale.object_ids()[0]
        cached_db.delete_object(victim, indexes=(index,))
        fresh = run(cached_db, index, q)
        assert fresh.stats.result_cache_hit is False
        assert victim not in fresh.object_ids()

    def test_near_edge_reweight_invalidates(self, cached_db):
        index = cached_db.build_index("sif")
        q = make_query()
        run(cached_db, index, q)
        cached_db.update_edge_weight(0, 37.0)  # the query's own edge
        assert run(cached_db, index, q).stats.result_cache_hit is False
        assert cached_db.result_cache.stats()["invalidated"] == 1

    def test_invalidated_answer_is_recomputed_not_resurrected(self, cached_db):
        index = cached_db.build_index("sif")
        q = make_query()
        run(cached_db, index, q)
        cached_db.insert_object(
            NetworkPosition(0, 10.0), {"pizza"}, indexes=(index,)
        )
        refreshed = run(cached_db, index, q)
        assert refreshed.stats.result_cache_hit is False
        # The refreshed answer is re-cached and valid again.
        assert run(cached_db, index, q).stats.result_cache_hit is True


class TestConstruction:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)

    def test_use_result_cache_installs_and_uninstalls(self, cached_db):
        assert cached_db.result_cache is not None
        assert cached_db.result_cache.max_entries == 8
        cached_db.result_cache = None
        index = cached_db.build_index("sif")
        q = make_query()
        run(cached_db, index, q)
        assert run(cached_db, index, q).stats.result_cache_hit is False
