"""Shadow-backend execution: in-flight divergence auditing."""

from __future__ import annotations

import math

import pytest

from repro.engine.plan import plan_diversified, plan_sk
from repro.errors import QueryError
from repro.workloads.queries import (
    WorkloadConfig,
    generate_diversified_queries,
    generate_sk_queries,
)


@pytest.fixture()
def shadowed_db(tiny_db):
    """The shared database; shadow/recorder state restored afterwards."""
    yield tiny_db
    tiny_db.engine.disable_shadow()
    tiny_db.disable_flight_recorder()
    tiny_db.disable_slow_query_log()


def _plans(db, index, n=5, method="seq", seed=31):
    queries = generate_diversified_queries(
        db, WorkloadConfig(num_queries=n, num_keywords=2, k=4, seed=seed)
    )
    return [
        plan_diversified(db, index, query, method=method)
        for query in queries
    ]


def _delta(db, before, name):
    return db.metrics.counters().get(name, 0) - before.get(name, 0)


class PerturbingBackend:
    """A faulty oracle: every finite distance drifts by a relative
    epsilon far above digest rounding — the injected fault the shadow
    audit (and replay) must catch."""

    name = "perturbed"

    def __init__(self, inner, epsilon: float = 1e-3) -> None:
        self.inner = inner
        self.epsilon = epsilon

    def _warp(self, value: float) -> float:
        if not math.isfinite(value) or value == 0.0:
            return value
        return value * (1.0 + self.epsilon)

    def position_distance(self, a, b, cutoff=math.inf, counters=None):
        return self._warp(
            self.inner.position_distance(a, b, cutoff, counters)
        )

    def position_matrix(self, positions, cutoff=math.inf, counters=None):
        matrix = self.inner.position_matrix(positions, cutoff, counters)
        return {key: self._warp(value) for key, value in matrix.items()}


class TestEnableShadow:
    def test_unknown_backend_rejected(self, shadowed_db):
        with pytest.raises(QueryError):
            shadowed_db.engine.enable_shadow("astar")

    def test_bad_rate_rejected(self, shadowed_db):
        for rate in (0.0, -0.5, 1.5):
            with pytest.raises(QueryError):
                shadowed_db.engine.enable_shadow("ch", rate=rate)

    def test_disable_clears_state(self, shadowed_db):
        engine = shadowed_db.engine
        engine.enable_shadow("ch", rate=0.25)
        engine.disable_shadow()
        assert engine.shadow_backend is None


class TestShadowExecution:
    @pytest.mark.parametrize("backend", ["ch", "hub"])
    @pytest.mark.parametrize("method", ["seq", "com"])
    def test_backends_agree_on_live_traffic(
        self, shadowed_db, tiny_indexes, backend, method
    ):
        db = shadowed_db
        before = db.metrics.counters()
        db.engine.enable_shadow(backend, rate=1.0)
        for i, plan in enumerate(_plans(db, tiny_indexes["sif"],
                                        method=method)):
            db.engine.execute(plan, sequence=i)
        assert _delta(db, before, "shadow.executions") == 5
        assert _delta(db, before, "shadow.matches") == 5
        assert _delta(db, before, "shadow.divergences") == 0

    def test_shadow_outcome_lands_in_flight_record(
        self, shadowed_db, tiny_indexes
    ):
        db = shadowed_db
        recorder = db.enable_flight_recorder()
        db.engine.enable_shadow("ch", rate=1.0)
        for i, plan in enumerate(_plans(db, tiny_indexes["sif"], n=2)):
            db.engine.execute(plan, sequence=i)
        for record in recorder.records():
            shadow = record["shadow"]
            assert shadow["backend"] == "ch"
            assert shadow["match"] is True
            assert shadow["digest"] == shadow["primary_digest"]
            assert record["digest"] == shadow["primary_digest"]

    def test_sk_queries_not_shadowed(self, shadowed_db, tiny_indexes):
        db = shadowed_db
        before = db.metrics.counters()
        db.engine.enable_shadow("ch", rate=1.0)
        queries = generate_sk_queries(
            db, WorkloadConfig(num_queries=3, num_keywords=2, seed=31)
        )
        for query in queries:
            db.engine.execute(plan_sk(db, tiny_indexes["sif"], query))
        assert _delta(db, before, "shadow.executions") == 0

    def test_result_cache_hits_not_shadowed(self, grid_network9):
        from repro import Database, NetworkPosition
        from repro.core.queries import DiversifiedSKQuery

        db = Database(grid_network9, buffer_pages=64)
        db.add_object(NetworkPosition(0, 20.0), {"pizza"})
        db.add_object(NetworkPosition(3, 50.0), {"pizza", "bar"})
        db.freeze()
        db.use_result_cache(max_entries=8)
        db.engine.enable_shadow("ch", rate=1.0)
        index = db.build_index("sif")
        query = DiversifiedSKQuery.create(
            NetworkPosition(0, 0.0), ["pizza"], 500.0, 2, 0.8
        )
        db.engine.execute(plan_diversified(db, index, query, method="seq"))
        db.engine.execute(plan_diversified(db, index, query, method="seq"))
        counters = db.metrics.counters()
        assert counters["query.result_cache_hits"] == 1
        # Only the cache-missing first execution was audited.
        assert counters["shadow.executions"] == 1


class TestShadowSampling:
    def test_rate_samples_deterministically_by_sequence(
        self, shadowed_db, tiny_indexes
    ):
        db = shadowed_db
        db.engine.enable_shadow("ch", rate=0.5)
        plans = _plans(db, tiny_indexes["sif"], n=10)
        before = db.metrics.counters()
        for i, plan in enumerate(plans):
            db.engine.execute(plan, sequence=i)
        serial = _delta(db, before, "shadow.executions")
        assert serial == 5  # int((i+1)*r) > int(i*r) at i = 1,3,5,7,9
        # The same batch under 4 workers makes identical decisions:
        # sampling derives from each query's batch index, not from a
        # shared counter consumed in dispatch order.
        before = db.metrics.counters()
        db.engine.execute_many(_plans(db, tiny_indexes["sif"], n=10),
                               workers=4)
        assert _delta(db, before, "shadow.executions") == serial

    def test_full_rate_audits_everything(self, shadowed_db, tiny_indexes):
        db = shadowed_db
        db.engine.enable_shadow("ch", rate=1.0)
        before = db.metrics.counters()
        db.engine.execute_many(_plans(db, tiny_indexes["sif"], n=6),
                               workers=3)
        assert _delta(db, before, "shadow.executions") == 6


class TestShadowDivergence:
    def test_perturbed_oracle_caught(
        self, shadowed_db, tiny_indexes, monkeypatch
    ):
        db = shadowed_db
        db.enable_slow_query_log(latency_seconds=3600.0)
        db.engine.enable_shadow("ch", rate=1.0)
        monkeypatch.setattr(
            db.engine, "_shadow_oracle",
            lambda backend: PerturbingBackend(db.ch_oracle()),
        )
        before = db.metrics.counters()
        plans = _plans(db, tiny_indexes["sif"], n=3)
        for i, plan in enumerate(plans):
            db.engine.execute(plan, sequence=i)
        diverged = _delta(db, before, "shadow.divergences")
        assert diverged > 0
        assert _delta(db, before, "shadow.divergence#SIF/SEQ") == diverged
        notes = [
            r for r in db.slow_query_log.records()
            if r.get("type") == "shadow_divergence"
        ]
        assert len(notes) == diverged
        for note in notes:
            assert note["shadow_backend"] == "ch"
            assert note["primary_digest"] != note["shadow_digest"]

    def test_divergence_renders_in_slowlog(self, shadowed_db):
        from repro.obs.slowlog import render_record

        text = render_record({
            "type": "shadow_divergence",
            "label": "SIF/SEQ",
            "algorithm": "seq",
            "primary_backend": "dijkstra",
            "shadow_backend": "ch",
            "primary_digest": "aaaa",
            "shadow_digest": "bbbb",
            "primary_results": 4,
            "shadow_results": 4,
            "worker": "w0",
        })
        assert "SHADOW DIVERGENCE" in text
        assert "aaaa" in text and "bbbb" in text
