"""Tests for dynamic insertion and deletion in IF, SIF and SIF-P."""

import numpy as np
import pytest

from repro import Database, SKQuery
from repro.errors import QueryError
from repro.network.graph import NetworkPosition


@pytest.fixture()
def live_db(grid_network9):
    db = Database(grid_network9, buffer_pages=64)
    db.add_object(NetworkPosition(0, 20.0), {"pizza"})
    db.add_object(NetworkPosition(3, 50.0), {"pizza", "bar"})
    db.freeze()
    return db


def random_burst(db, indexes, rng, count=120):
    """Insert ``count`` random objects through the dynamic path."""
    for _ in range(count):
        edge = db.network.edge(int(rng.integers(0, 12)))
        offset = float(rng.uniform(0, edge.weight))
        terms = {f"t{int(rng.integers(0, 6))}", "pizza"}
        db.insert_object(
            NetworkPosition(edge.edge_id, offset), terms, indexes
        )


class TestInsertIntoIF:
    def test_new_object_becomes_findable(self, live_db):
        index = live_db.build_index("if")
        q = SKQuery.create(NetworkPosition(0, 0.0), ["sushi"], 1000.0)
        assert len(live_db.sk_search(index, q)) == 0
        live_db.insert_object(NetworkPosition(0, 70.0), {"sushi"}, [index])
        result = live_db.sk_search(index, q)
        assert len(result) == 1
        assert result.items[0].distance == pytest.approx(70.0)

    def test_insert_existing_term_same_edge(self, live_db):
        index = live_db.build_index("if")
        live_db.insert_object(NetworkPosition(0, 90.0), {"pizza"}, [index])
        q = SKQuery.create(NetworkPosition(0, 0.0), ["pizza"], 1000.0)
        assert len(live_db.sk_search(index, q)) == 3

    def test_insert_on_fresh_edge(self, live_db):
        index = live_db.build_index("if")
        live_db.insert_object(NetworkPosition(7, 10.0), {"pizza"}, [index])
        q = SKQuery.create(NetworkPosition(7, 0.0), ["pizza"], 2000.0)
        ids = live_db.sk_search(index, q).object_ids()
        assert len(ids) == 3

    def test_many_inserts_keep_equivalence(self, live_db):
        """After a burst of inserts the dynamic index answers exactly
        like a freshly rebuilt one."""
        index = live_db.build_index("if")
        random_burst(live_db, [index], np.random.default_rng(5))
        rebuilt = live_db.build_index("if", file_prefix="if-rebuilt")
        for term in ("pizza", "t0", "t3", "bar"):
            q = SKQuery.create(NetworkPosition(0, 0.0), [term], 5000.0)
            assert sorted(live_db.sk_search(index, q).object_ids()) == sorted(
                live_db.sk_search(rebuilt, q).object_ids()
            )


class TestDeleteFromIF:
    def test_deleted_object_disappears(self, live_db):
        index = live_db.build_index("if")
        q = SKQuery.create(NetworkPosition(0, 0.0), ["pizza"], 1000.0)
        victim = live_db.sk_search(index, q).object_ids()[0]
        live_db.delete_object(victim, indexes=(index,))
        assert victim not in live_db.sk_search(index, q).object_ids()

    def test_insert_delete_burst_keeps_equivalence(self, live_db):
        index = live_db.build_index("if")
        rng = np.random.default_rng(11)
        random_burst(live_db, [index], rng, count=80)
        for _ in range(40):
            objects = list(live_db.store)
            victim = objects[int(rng.integers(0, len(objects)))]
            live_db.delete_object(victim.object_id, indexes=(index,))
        rebuilt = live_db.build_index("if", file_prefix="if-rebuilt-del")
        for term in ("pizza", "t0", "t3", "bar"):
            q = SKQuery.create(NetworkPosition(0, 0.0), [term], 5000.0)
            assert sorted(live_db.sk_search(index, q).object_ids()) == sorted(
                live_db.sk_search(rebuilt, q).object_ids()
            )


class TestInsertIntoSIF:
    def test_signature_bit_is_set(self, live_db):
        index = live_db.build_index("sif")
        # Before: edge 5 has no "pizza" bit -> pruned with zero loads.
        index.counters.reset()
        assert index.load_objects(5, frozenset({"pizza"})) == []
        assert index.counters.edges_pruned_by_signature == 1
        live_db.insert_object(NetworkPosition(5, 30.0), {"pizza"}, [index])
        got = index.load_objects(5, frozenset({"pizza"}))
        assert len(got) == 1

    def test_and_semantics_after_insert(self, live_db):
        index = live_db.build_index("sif")
        live_db.insert_object(NetworkPosition(0, 40.0), {"pizza", "vegan"},
                              [index])
        q = SKQuery.create(NetworkPosition(0, 0.0), ["pizza", "vegan"], 1000.0)
        result = live_db.sk_search(index, q)
        assert len(result) == 1


class TestDeleteFromSIF:
    def test_bit_cleared_only_when_orphaned(self, live_db):
        index = live_db.build_index("sif")
        a = live_db.insert_object(NetworkPosition(5, 30.0), {"pizza"}, [index])
        b = live_db.insert_object(NetworkPosition(5, 60.0), {"pizza"}, [index])
        # Two carriers: deleting one must keep the bit set.
        live_db.delete_object(a.object_id, indexes=(index,))
        assert len(index.load_objects(5, frozenset({"pizza"}))) == 1
        # Last carrier gone: the edge prunes by signature again.
        live_db.delete_object(b.object_id, indexes=(index,))
        index.counters.reset()
        assert index.load_objects(5, frozenset({"pizza"})) == []
        assert index.counters.edges_pruned_by_signature == 1

    def test_burst_equivalence_with_rebuilt(self, live_db):
        index = live_db.build_index("sif")
        rng = np.random.default_rng(23)
        random_burst(live_db, [index], rng, count=80)
        for _ in range(40):
            objects = list(live_db.store)
            victim = objects[int(rng.integers(0, len(objects)))]
            live_db.delete_object(victim.object_id, indexes=(index,))
        rebuilt = live_db.build_index("sif", file_prefix="sif-rebuilt-del")
        for term in ("pizza", "t0", "t3", "bar"):
            q = SKQuery.create(NetworkPosition(0, 0.0), [term], 5000.0)
            assert sorted(live_db.sk_search(index, q).object_ids()) == sorted(
                live_db.sk_search(rebuilt, q).object_ids()
            )


class TestSIFPDynamic:
    def test_insert_becomes_findable(self, live_db):
        index = live_db.build_index("sif-p")
        q = SKQuery.create(NetworkPosition(0, 0.0), ["sushi"], 1000.0)
        assert len(live_db.sk_search(index, q)) == 0
        live_db.insert_object(NetworkPosition(0, 70.0), {"sushi"}, [index])
        result = live_db.sk_search(index, q)
        assert len(result) == 1
        assert result.items[0].distance == pytest.approx(70.0)

    def test_delete_disappears(self, live_db):
        index = live_db.build_index("sif-p")
        q = SKQuery.create(NetworkPosition(0, 0.0), ["pizza"], 1000.0)
        victim = live_db.sk_search(index, q).object_ids()[0]
        live_db.delete_object(victim, indexes=(index,))
        assert victim not in live_db.sk_search(index, q).object_ids()

    def test_burst_equivalence_with_rebuilt(self, live_db):
        """Inserts then deletes through the dynamic path answer exactly
        like a freshly rebuilt SIF-P (trees, virtual-edge bits and
        segment tables all kept consistent)."""
        index = live_db.build_index("sif-p")
        rng = np.random.default_rng(37)
        random_burst(live_db, [index], rng, count=80)
        for _ in range(40):
            objects = list(live_db.store)
            victim = objects[int(rng.integers(0, len(objects)))]
            live_db.delete_object(victim.object_id, indexes=(index,))
        rebuilt = live_db.build_index("sif-p", file_prefix="sifp-rebuilt")
        for term in ("pizza", "t0", "t3", "bar"):
            q = SKQuery.create(NetworkPosition(0, 0.0), [term], 5000.0)
            assert sorted(live_db.sk_search(index, q).object_ids()) == sorted(
                live_db.sk_search(rebuilt, q).object_ids()
            )


class TestUnsupportedKinds:
    def test_ir_rejects_dynamic_insert(self, live_db):
        index = live_db.build_index("ir")
        with pytest.raises(QueryError):
            live_db.insert_object(NetworkPosition(0, 10.0), {"x"}, [index])

    def test_insert_requires_frozen_db(self, grid_network9):
        db = Database(grid_network9, buffer_pages=8)
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            db.insert_object(NetworkPosition(0, 1.0), {"x"})
