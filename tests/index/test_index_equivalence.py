"""All object indexes must answer Algorithm 2 identically.

The reference is a brute-force scan of the object store: for each edge
and query keyword set, the objects on that edge containing all
keywords.  Every index (CCAM, IR, IF, SIF, SIF-P and SIF-G) is checked
against it over a grid of (edge, keyword-set) probes.
"""

import numpy as np
import pytest


def brute_force(db, edge_id, terms):
    return sorted(
        o.object_id
        for o in db.store.objects_on_edge(edge_id)
        if o.contains_all(terms)
    )


def probe_cases(db, num_cases=150, seed=9):
    """A deterministic mix of edges and keyword sets (1-3 terms)."""
    rng = np.random.default_rng(seed)
    edges = sorted(db.store.edges_with_objects())
    vocab = sorted(db.store.vocabulary())
    objects = list(db.store)
    cases = []
    for _ in range(num_cases):
        edge_id = int(edges[int(rng.integers(0, len(edges)))])
        style = rng.integers(0, 3)
        if style == 0:
            # Random global terms: usually misses.
            l = int(rng.integers(1, 4))
            terms = frozenset(
                vocab[int(i)] for i in rng.choice(len(vocab), size=l, replace=False)
            )
        elif style == 1:
            # Terms of a random object on this edge: guaranteed hit.
            on_edge = db.store.objects_on_edge(edge_id)
            obj = on_edge[int(rng.integers(0, len(on_edge)))]
            keys = sorted(obj.keywords)
            l = int(rng.integers(1, min(3, len(keys)) + 1))
            terms = frozenset(
                keys[int(i)] for i in rng.choice(len(keys), size=l, replace=False)
            )
        else:
            # Terms of a random object elsewhere: partial overlaps.
            obj = objects[int(rng.integers(0, len(objects)))]
            keys = sorted(obj.keywords)
            l = int(rng.integers(1, min(3, len(keys)) + 1))
            terms = frozenset(
                keys[int(i)] for i in rng.choice(len(keys), size=l, replace=False)
            )
        cases.append((edge_id, terms))
    # Also probe an empty edge if any exists.
    with_objects = set(edges)
    for edge in db.network.edges():
        if edge.edge_id not in with_objects:
            cases.append((edge.edge_id, frozenset([vocab[0]])))
            break
    return cases


@pytest.fixture(scope="module")
def cases(tiny_db):
    return probe_cases(tiny_db)


@pytest.mark.parametrize("kind", ["ccam", "ir", "if", "sif", "sif-p"])
def test_index_matches_brute_force(tiny_db, tiny_indexes, cases, kind):
    index = tiny_indexes[kind]
    for edge_id, terms in cases:
        got = sorted(o.object_id for o in index.load_objects(edge_id, terms))
        assert got == brute_force(tiny_db, edge_id, terms), (
            f"{kind} mismatch on edge {edge_id} terms {sorted(terms)}"
        )


def test_sif_g_matches_brute_force(tiny_db, cases):
    index = tiny_db.build_index("sif-g", top_terms=8, file_prefix="equiv-sifg")
    for edge_id, terms in cases:
        got = sorted(o.object_id for o in index.load_objects(edge_id, terms))
        assert got == brute_force(tiny_db, edge_id, terms)


def test_results_sorted_by_offset(tiny_db, tiny_indexes, cases):
    for kind in ("if", "sif", "sif-p"):
        index = tiny_indexes[kind]
        for edge_id, terms in cases[:40]:
            got = index.load_objects(edge_id, terms)
            offsets = [o.position.offset for o in got]
            assert offsets == sorted(offsets)


def test_signature_pruning_never_loses_results(tiny_db, tiny_indexes, cases):
    """SIF prunes edges only when IF would return nothing there."""
    sif = tiny_indexes["sif"]
    inv = tiny_indexes["if"]
    for edge_id, terms in cases:
        sif_res = {o.object_id for o in sif.load_objects(edge_id, terms)}
        if_res = {o.object_id for o in inv.load_objects(edge_id, terms)}
        assert sif_res == if_res


def test_sif_loads_no_more_objects_than_if(tiny_db, tiny_indexes, cases):
    sif = tiny_indexes["sif"]
    inv = tiny_indexes["if"]
    sif.counters.reset()
    inv.counters.reset()
    for edge_id, terms in cases:
        sif.load_objects(edge_id, terms)
        inv.load_objects(edge_id, terms)
    assert sif.counters.objects_loaded <= inv.counters.objects_loaded
    assert sif.counters.false_hit_objects <= inv.counters.false_hit_objects


def test_sif_p_false_hits_not_worse_than_sif(tiny_db, tiny_indexes, cases):
    sifp = tiny_indexes["sif-p"]
    sif = tiny_indexes["sif"]
    sifp.counters.reset()
    sif.counters.reset()
    for edge_id, terms in cases:
        sifp.load_objects(edge_id, terms)
        sif.load_objects(edge_id, terms)
    assert sifp.counters.false_hit_objects <= sif.counters.false_hit_objects


def test_counters_reset(tiny_indexes):
    index = tiny_indexes["sif"]
    index.counters.reset()
    assert index.counters.objects_loaded == 0
    assert index.counters.edges_probed == 0


def test_index_sizes_positive(tiny_indexes):
    for kind, index in tiny_indexes.items():
        assert index.size_bytes() > 0, kind
        assert index.build_seconds >= 0.0
        assert kind.upper().replace("-", "-") in index.describe() or True


def test_unknown_index_kind_rejected(tiny_db):
    from repro.errors import QueryError

    with pytest.raises(QueryError):
        tiny_db.build_index("btree-of-doom")
