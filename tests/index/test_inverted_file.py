"""Tests for the inverted file index internals."""

import pytest

from repro.index.inverted_file import InvertedFileIndex, edge_zorder_key, pack_postings
from repro.network.graph import NetworkPosition
from repro.network.objects import ObjectStore
from repro.spatial.zorder import ZOrderCurve
from repro.storage.pagefile import DiskManager


@pytest.fixture()
def store(line_network):
    s = ObjectStore(line_network)
    s.add(NetworkPosition(0, 10.0), {"pizza", "bar"})
    s.add(NetworkPosition(0, 20.0), {"pizza"})
    s.add(NetworkPosition(1, 30.0), {"bar"})
    s.add(NetworkPosition(3, 40.0), {"pizza", "bar", "cafe"})
    s.freeze()
    return s


@pytest.fixture()
def index(store):
    disk = DiskManager(buffer_pages=64)
    return InvertedFileIndex(store, disk)


class TestEdgeKeys:
    def test_keys_unique_across_edges(self, line_network):
        curve = ZOrderCurve()
        keys = {
            edge_zorder_key(curve, line_network, e.edge_id)
            for e in line_network.edges()
        }
        assert len(keys) == line_network.num_edges

    def test_key_embeds_edge_id(self, line_network):
        curve = ZOrderCurve()
        key = edge_zorder_key(curve, line_network, 2)
        assert key & 0xFFFFFF == 2


class TestPackPostings:
    def test_small_lists_share_pages(self):
        disk = DiskManager()
        file = disk.create_file("p", category="inverted")
        postings = [(k, k * 10, 0.0) for k in range(10)]
        edge_pages = pack_postings(file, postings)
        assert file.num_pages == 1
        assert all(pages == [0] for pages in edge_pages.values())

    def test_large_list_spans_pages(self):
        disk = DiskManager()
        file = disk.create_file("p", category="inverted")
        postings = [(7, i, 0.0) for i in range(600)]
        edge_pages = pack_postings(file, postings)
        assert file.num_pages == 3
        assert edge_pages[7] == [0, 1, 2]

    def test_boundary_edges_listed_once_per_page(self):
        disk = DiskManager()
        file = disk.create_file("p", category="inverted")
        postings = [(1, i, 0.0) for i in range(200)] + [(2, i, 0.0) for i in range(200)]
        edge_pages = pack_postings(file, postings)
        assert len(edge_pages[1]) >= 1
        for pages in edge_pages.values():
            assert len(pages) == len(set(pages))


class TestLoadObjects:
    def test_single_term(self, index):
        got = {o.object_id for o in index.load_objects(0, frozenset({"pizza"}))}
        assert got == {0, 1}

    def test_and_semantics(self, index):
        got = {o.object_id for o in index.load_objects(0, frozenset({"pizza", "bar"}))}
        assert got == {0}

    def test_term_absent_on_edge(self, index):
        assert index.load_objects(1, frozenset({"pizza"})) == []

    def test_unknown_term(self, index):
        assert index.load_objects(0, frozenset({"sushi"})) == []

    def test_empty_edge(self, index):
        assert index.load_objects(2, frozenset({"pizza"})) == []

    def test_false_hit_counting(self, index):
        index.counters.reset()
        # Edge 0 has pizza objects and bar objects but the pair {bar,
        # cafe} matches nothing: postings for bar are loaded in vain.
        index.load_objects(0, frozenset({"bar", "cafe"}))
        assert index.counters.false_hits == 1
        assert index.counters.false_hit_objects >= 1

    def test_true_hit_not_counted_as_false(self, index):
        index.counters.reset()
        index.load_objects(0, frozenset({"pizza"}))
        assert index.counters.false_hits == 0
        assert index.counters.results_returned == 2

    def test_postings_pages_of(self, index):
        assert index.postings_pages_of("pizza") >= 1
        assert index.postings_pages_of("nope") == 0
        assert index.has_term("pizza")
        assert not index.has_term("nope")

    def test_io_charged_per_query_keyword(self, store):
        disk = DiskManager(buffer_pages=0)
        index = InvertedFileIndex(store, disk, file_prefix="io")
        disk.stats.reset()
        index.load_objects(0, frozenset({"pizza", "bar"}))
        two_term = disk.stats.logical_reads
        disk.stats.reset()
        index.load_objects(0, frozenset({"pizza"}))
        one_term = disk.stats.logical_reads
        assert two_term > one_term > 0
