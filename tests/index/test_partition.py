"""Tests for the edge-partitioning cost model and solvers (paper §3.3).

Includes the paper's own worked example (Fig. 3): five objects
``o1(t1,t3), o2(t2,t3), o3(t1), o4(t1), o5(t1,t4)`` on one edge, the
query set ``Q = {q1: {t1,t3}, q2: {t2,t4}, q3: {t1,t2}}``, and the cut
between ``o2`` and ``o3``.
"""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.partition import (
    dp_partition,
    false_hit_cost,
    greedy_partition,
    partition_cost,
    segments_from_cuts,
)

F = frozenset

#: The paper's Fig. 3 objects, in visiting order along the edge.
FIG3_OBJECTS = [
    F({"t1", "t3"}),
    F({"t2", "t3"}),
    F({"t1"}),
    F({"t1"}),
    F({"t1", "t4"}),
]
FIG3_LOG = [
    (F({"t1", "t3"}), 1 / 3),  # q1: true hit
    (F({"t2", "t4"}), 1 / 3),  # q2: false hit on the whole edge
    (F({"t1", "t2"}), 1 / 3),  # q3: false hit on the whole edge
]


class TestFalseHitCost:
    def test_true_hit_costs_nothing(self):
        assert false_hit_cost(FIG3_OBJECTS, F({"t1", "t3"})) == 0

    def test_false_hit_costs_whole_group(self):
        # Paper: ξ(q2, e) = 5 and ξ(q3, e) = 5.
        assert false_hit_cost(FIG3_OBJECTS, F({"t2", "t4"})) == 5
        assert false_hit_cost(FIG3_OBJECTS, F({"t1", "t2"})) == 5

    def test_signature_failure_costs_nothing(self):
        # q.T = {t1, t5}: t5 absent, fails the signature test.
        assert false_hit_cost(FIG3_OBJECTS, F({"t1", "t5"})) == 0

    def test_empty_group(self):
        assert false_hit_cost([], F({"t1"})) == 0

    def test_single_keyword_queries(self):
        assert false_hit_cost(FIG3_OBJECTS, F({"t1"})) == 0  # o1 matches


class TestSegmentsFromCuts:
    def test_no_cuts(self):
        assert segments_from_cuts(5, []) == [(0, 4)]

    def test_paper_cut(self):
        # Cut after o2 (index 1): e1 = {o1, o2}, e2 = {o3, o4, o5}.
        assert segments_from_cuts(5, [1]) == [(0, 1), (2, 4)]

    def test_multiple_cuts(self):
        assert segments_from_cuts(5, [0, 3]) == [(0, 0), (1, 3), (4, 4)]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            segments_from_cuts(5, [4])
        with pytest.raises(ValueError):
            segments_from_cuts(5, [-1])


class TestPartitionCostPaperExample:
    def test_whole_edge_cost(self):
        # ξ(Q, whole edge) = (0 + 5 + 5) / 3.
        assert partition_cost(FIG3_OBJECTS, [], FIG3_LOG) == pytest.approx(10 / 3)

    def test_paper_partition_cost(self):
        # With the Fig. 3 cut: ξ(q1, P) = 0, ξ(q2, P) = 0, ξ(q3, P) = 2.
        assert partition_cost(FIG3_OBJECTS, [1], FIG3_LOG) == pytest.approx(2 / 3)

    def test_per_query_breakdown(self):
        segs = segments_from_cuts(5, [1])
        e1 = FIG3_OBJECTS[0:2]
        e2 = FIG3_OBJECTS[2:5]
        assert false_hit_cost(e1, F({"t1", "t3"})) == 0
        assert false_hit_cost(e2, F({"t1", "t3"})) == 0
        assert false_hit_cost(e1, F({"t2", "t4"})) == 0  # fails signature
        assert false_hit_cost(e2, F({"t2", "t4"})) == 0  # fails signature
        assert false_hit_cost(e1, F({"t1", "t2"})) == 2  # false hit
        assert false_hit_cost(e2, F({"t1", "t2"})) == 0  # fails signature
        assert segs == [(0, 1), (2, 4)]


def brute_force_best(objects, cuts, log):
    """Exhaustive minimum over every set of exactly <= cuts positions."""
    m = len(objects)
    best = partition_cost(objects, [], log)
    for c in range(1, min(cuts, m - 1) + 1):
        for positions in combinations(range(m - 1), c):
            best = min(best, partition_cost(objects, positions, log))
    return best


class TestDPPartition:
    def test_paper_example_finds_the_cut(self):
        cuts, cost = dp_partition(FIG3_OBJECTS, 1, FIG3_LOG)
        assert cuts == (1,)
        assert cost == pytest.approx(2 / 3)

    def test_zero_cuts(self):
        cuts, cost = dp_partition(FIG3_OBJECTS, 0, FIG3_LOG)
        assert cuts == ()
        assert cost == pytest.approx(10 / 3)

    def test_empty_objects(self):
        assert dp_partition([], 2, FIG3_LOG) == ((), 0.0)

    def test_more_cuts_never_hurt(self):
        _, c1 = dp_partition(FIG3_OBJECTS, 1, FIG3_LOG)
        _, c2 = dp_partition(FIG3_OBJECTS, 2, FIG3_LOG)
        _, c3 = dp_partition(FIG3_OBJECTS, 3, FIG3_LOG)
        assert c3 <= c2 <= c1

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10**6), st.integers(1, 3))
    def test_dp_is_optimal_vs_brute_force(self, seed, cuts):
        rng = np.random.default_rng(seed)
        vocab = ["a", "b", "c", "d"]
        m = int(rng.integers(2, 7))
        objects = [
            frozenset(
                rng.choice(vocab, size=int(rng.integers(1, 3)), replace=False)
            )
            for _ in range(m)
        ]
        log = [
            (frozenset(rng.choice(vocab, size=2, replace=False)), 0.5)
            for _ in range(2)
        ]
        got_cuts, got_cost = dp_partition(objects, cuts, log)
        # DP may use up to `cuts` cuts; compare against the best over
        # all partitions with at most that many cuts... the DP uses
        # exactly c cuts, so take the min over c' <= cuts via its own
        # monotonicity and brute force over all subsets.
        best = brute_force_best(objects, cuts, log)
        best_exact = min(
            dp_partition(objects, c, log)[1] for c in range(0, cuts + 1)
        )
        assert best_exact == pytest.approx(best)
        assert got_cost == pytest.approx(
            partition_cost(objects, got_cuts, log)
        )


class TestGreedyPartition:
    def test_paper_example(self):
        cuts, cost = greedy_partition(FIG3_OBJECTS, 1, FIG3_LOG)
        assert cuts == (1,)
        assert cost == pytest.approx(2 / 3)

    def test_never_worse_than_no_partition(self):
        base = partition_cost(FIG3_OBJECTS, [], FIG3_LOG)
        _, cost = greedy_partition(FIG3_OBJECTS, 3, FIG3_LOG)
        assert cost <= base

    def test_single_object_edge(self):
        cuts, cost = greedy_partition([F({"a"})], 2, FIG3_LOG)
        assert cuts == ()

    def test_stops_without_improvement(self):
        # All objects identical: no cut can help.
        objects = [F({"a", "b"})] * 4
        log = [(F({"a", "b"}), 1.0)]
        cuts, _ = greedy_partition(objects, 3, log)
        assert cuts == ()

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10**6))
    def test_greedy_never_beats_dp(self, seed):
        rng = np.random.default_rng(seed)
        vocab = ["a", "b", "c", "d", "e"]
        m = int(rng.integers(2, 8))
        objects = [
            frozenset(
                rng.choice(vocab, size=int(rng.integers(1, 4)), replace=False)
            )
            for _ in range(m)
        ]
        log = [
            (frozenset(rng.choice(vocab, size=2, replace=False)), 1 / 3)
            for _ in range(3)
        ]
        cuts = 2
        _, dp_cost = dp_partition(objects, cuts, log)
        dp_best = min(dp_partition(objects, c, log)[1] for c in range(cuts + 1))
        _, greedy_cost = greedy_partition(objects, cuts, log)
        assert greedy_cost >= dp_best - 1e-9
