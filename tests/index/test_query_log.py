"""Tests for the query-log models (paper §3.3 Remark 1, Fig. 10)."""

import numpy as np
import pytest

from repro.index.query_log import frequency_edge_log, log_from_workload, random_edge_log

F = frozenset


class TestWorkloadLog:
    def test_merges_duplicates(self):
        log = log_from_workload([{"a", "b"}, {"b", "a"}, {"c"}])
        assert dict(log)[F({"a", "b"})] == pytest.approx(2 / 3)
        assert dict(log)[F({"c"})] == pytest.approx(1 / 3)

    def test_probabilities_sum_to_one(self):
        log = log_from_workload([{"a"}, {"b"}, {"c"}, {"a"}])
        assert sum(p for _q, p in log) == pytest.approx(1.0)

    def test_empty_workload(self):
        assert log_from_workload([]) == []

    def test_sorted_by_frequency(self):
        log = log_from_workload([{"a"}] * 3 + [{"b"}])
        assert log[0][0] == F({"a"})


class TestEdgeLogs:
    def test_frequency_log_prefers_frequent_terms(self):
        objects = [F({"hot", "x%d" % i}) for i in range(10)]
        rng = np.random.default_rng(0)
        log = frequency_edge_log(objects, num_queries=64, num_terms=1, rng=rng)
        top_query, top_prob = log[0]
        assert top_query == F({"hot"})
        assert top_prob > 0.3

    def test_random_log_is_flatter(self):
        objects = [F({"hot", "x%d" % i}) for i in range(10)]
        f_log = frequency_edge_log(
            objects, num_queries=200, num_terms=1, rng=np.random.default_rng(1)
        )
        r_log = random_edge_log(
            objects, num_queries=200, num_terms=1, rng=np.random.default_rng(1)
        )
        f_top = max(p for _q, p in f_log)
        r_top = max(p for _q, p in r_log)
        assert f_top > r_top

    def test_empty_inputs(self):
        rng = np.random.default_rng(2)
        assert frequency_edge_log([], 10, 2, rng) == []
        assert random_edge_log([F({"a"})], 0, 2, rng) == []

    def test_num_terms_capped_at_local_vocab(self):
        rng = np.random.default_rng(3)
        log = frequency_edge_log([F({"a", "b"})], 10, 5, rng)
        assert all(q == F({"a", "b"}) for q, _p in log)

    def test_probabilities_normalised(self):
        objects = [F({"a", "b"}), F({"b", "c"}), F({"c"})]
        rng = np.random.default_rng(4)
        log = frequency_edge_log(objects, num_queries=50, num_terms=2, rng=rng)
        assert sum(p for _q, p in log) == pytest.approx(1.0)
