"""Tests for the SIF-G group index (Fig. 9 comparison point)."""

import pytest

from repro.index.sif_g import SIFGIndex
from repro.network.graph import NetworkPosition
from repro.network.objects import ObjectStore
from repro.storage.pagefile import DiskManager


@pytest.fixture()
def store(line_network):
    s = ObjectStore(line_network)
    # "hot" and "new" are frequent and co-occur only on edge 0.
    s.add(NetworkPosition(0, 10.0), {"hot", "new"})
    s.add(NetworkPosition(0, 20.0), {"hot"})
    s.add(NetworkPosition(1, 10.0), {"hot"})
    s.add(NetworkPosition(1, 20.0), {"new"})
    s.add(NetworkPosition(2, 10.0), {"hot", "rare1"})
    s.add(NetworkPosition(2, 20.0), {"new", "rare2"})
    s.freeze()
    return s


@pytest.fixture()
def index(store):
    disk = DiskManager(buffer_pages=64)
    return SIFGIndex(store, disk, top_terms=2, min_postings_pages=1)


class TestGroups:
    def test_group_built_for_top_pair(self, index):
        assert index.num_groups == 1

    def test_group_signature_prunes_non_cooccurring_edges(self, index):
        """Edges 1 and 2 contain both terms separately but never on one
        object's edge-pair list... the *group* list knows they never
        co-occur there, while plain SIF signatures would pass."""
        index.counters.reset()
        # Edge 1: hot on one object, new on another -> group bit unset.
        got = index.load_objects(1, frozenset({"hot", "new"}))
        assert got == []
        assert index.counters.edges_pruned_by_signature == 1
        assert index.counters.objects_loaded == 0

    def test_group_true_hit(self, index):
        got = index.load_objects(0, frozenset({"hot", "new"}))
        assert [o.object_id for o in got] == [0]

    def test_single_term_falls_back_to_sif(self, index):
        got = {o.object_id for o in index.load_objects(0, frozenset({"hot"}))}
        assert got == {0, 1}

    def test_pair_plus_single_cover(self, index):
        got = index.load_objects(2, frozenset({"hot", "new", "rare1"}))
        assert got == []

    def test_group_size_accounted(self, index):
        assert index.group_size_bytes() > 0
        assert index.size_bytes() > index.group_size_bytes()


class TestGroupEdgeCases:
    def test_no_top_terms(self, store):
        disk = DiskManager(buffer_pages=64)
        index = SIFGIndex(store, disk, top_terms=0, file_prefix="g0")
        assert index.num_groups == 0
        got = {o.object_id for o in index.load_objects(0, frozenset({"hot"}))}
        assert got == {0, 1}

    def test_wait_group_never_cooccurs(self, line_network):
        s = ObjectStore(line_network)
        s.add(NetworkPosition(0, 1.0), {"a"})
        s.add(NetworkPosition(0, 2.0), {"b"})
        s.freeze()
        disk = DiskManager(buffer_pages=64)
        index = SIFGIndex(s, disk, top_terms=2, min_postings_pages=1)
        # a and b never co-occur on any object: no group list exists,
        # queries fall back to single-term intersection.
        assert index.num_groups == 0
        assert index.load_objects(0, frozenset({"a", "b"})) == []
