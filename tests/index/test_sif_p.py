"""Tests for SIF-P internals: partitioning, per-virtual-edge pruning."""

import pytest

from repro.index.sif_p import SIFPIndex
from repro.network.graph import NetworkPosition
from repro.network.objects import ObjectStore
from repro.storage.pagefile import DiskManager


@pytest.fixture()
def fig3_store(line_network):
    """The paper's Fig. 3 edge: five objects with known keywords."""
    s = ObjectStore(line_network)
    s.add(NetworkPosition(0, 10.0), {"t1", "t3"})
    s.add(NetworkPosition(0, 25.0), {"t2", "t3"})
    s.add(NetworkPosition(0, 50.0), {"t1"})
    s.add(NetworkPosition(0, 70.0), {"t1"})
    s.add(NetworkPosition(0, 90.0), {"t1", "t4"})
    # A second edge so not everything is on one edge.
    s.add(NetworkPosition(1, 10.0), {"t9"})
    s.freeze()
    return s


def fig3_log_builder(object_keywords, rng):
    return [
        (frozenset({"t1", "t3"}), 1 / 3),
        (frozenset({"t2", "t4"}), 1 / 3),
        (frozenset({"t1", "t2"}), 1 / 3),
    ]


@pytest.fixture()
def sifp(fig3_store):
    disk = DiskManager(buffer_pages=64)
    return SIFPIndex(
        fig3_store,
        disk,
        max_cuts=1,
        partition_fraction=1.0,
        log_builder=fig3_log_builder,
        min_postings_pages=1,
    )


class TestPartitioning:
    def test_paper_cut_is_chosen(self, sifp):
        # The optimal single cut separates {o1, o2} from {o3, o4, o5}.
        assert sifp.segments_of(0) == [(0, 1), (2, 4)]
        assert sifp.num_partitioned_edges() == 1

    def test_unpartitioned_edge_single_segment(self, sifp):
        assert sifp.segments_of(1) == [(0, 0)]

    def test_method_validation(self, fig3_store):
        disk = DiskManager()
        with pytest.raises(ValueError):
            SIFPIndex(fig3_store, disk, method="annealing")

    def test_dp_method_agrees_on_fig3(self, fig3_store):
        disk = DiskManager(buffer_pages=64)
        index = SIFPIndex(
            fig3_store,
            disk,
            max_cuts=1,
            partition_fraction=1.0,
            method="dp",
            log_builder=fig3_log_builder,
            min_postings_pages=1,
        )
        assert index.segments_of(0) == [(0, 1), (2, 4)]


class TestVirtualEdgePruning:
    def test_fig3_false_hit_avoided(self, sifp):
        """q.T = {t2, t4} fails both virtual-edge signature tests."""
        sifp.counters.reset()
        got = sifp.load_objects(0, frozenset({"t2", "t4"}))
        assert got == []
        assert sifp.counters.edges_pruned_by_signature == 1
        assert sifp.counters.objects_loaded == 0

    def test_fig3_partial_false_hit(self, sifp):
        """q.T = {t1, t2}: only the first virtual edge is loaded."""
        sifp.counters.reset()
        got = sifp.load_objects(0, frozenset({"t1", "t2"}))
        assert got == []
        # Only e1 = {o1, o2} passes its signature; its two objects are
        # the false-hit cost (paper: ξ(q3, P) = 2).
        assert sifp.counters.false_hit_objects == 2

    def test_true_hit_returns_object(self, sifp):
        got = sifp.load_objects(0, frozenset({"t1", "t3"}))
        assert [o.object_id for o in got] == [0]

    def test_single_term_queries(self, sifp):
        got = sifp.load_objects(0, frozenset({"t1"}))
        assert {o.object_id for o in got} == {0, 2, 3, 4}

    def test_absent_term_prunes(self, sifp):
        sifp.counters.reset()
        assert sifp.load_objects(0, frozenset({"t7"})) == []
        assert sifp.counters.edges_pruned_by_signature == 1

    def test_edge_without_objects(self, sifp):
        assert sifp.load_objects(3, frozenset({"t1"})) == []


class TestSizes:
    def test_signature_size_accounts_partitions(self, sifp):
        assert sifp.signature_size_bytes() > 0
        assert sifp.size_bytes() > sifp.signature_size_bytes()
