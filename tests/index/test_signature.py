"""Tests for the edge signature file (paper §3.1)."""

import pytest

from repro.index.inverted_file import InvertedFileIndex
from repro.index.signature import SignatureFile
from repro.network.graph import NetworkPosition, RoadNetwork
from repro.network.objects import ObjectStore
from repro.storage.pagefile import DiskManager


@pytest.fixture()
def small_store(line_network):
    store = ObjectStore(line_network)
    store.add(NetworkPosition(0, 10.0), {"t1", "t3"})
    store.add(NetworkPosition(0, 20.0), {"t2", "t3"})
    store.add(NetworkPosition(1, 30.0), {"t1"})
    store.add(NetworkPosition(2, 40.0), {"t4"})
    store.freeze()
    return store


class TestBits:
    def test_bit_semantics(self, small_store):
        sig = SignatureFile(small_store)
        assert sig.bit(0, "t1") is True
        assert sig.bit(0, "t2") is True
        assert sig.bit(0, "t4") is False
        assert sig.bit(1, "t1") is True
        assert sig.bit(1, "t3") is False
        assert sig.bit(2, "t4") is True

    def test_and_semantics_test(self, small_store):
        sig = SignatureFile(small_store)
        assert sig.test(0, {"t1", "t3"}) is True
        assert sig.test(0, {"t1", "t4"}) is False  # t4 not on edge 0
        assert sig.test(1, {"t1"}) is True
        assert sig.test(1, {"t1", "t2"}) is False

    def test_unknown_term_passes_open(self, small_store):
        # A term with no signature cannot prune (conservative).
        sig = SignatureFile(small_store)
        assert sig.bit(0, "never-seen") is True

    def test_empty_terms_passes(self, small_store):
        sig = SignatureFile(small_store)
        assert sig.test(0, []) is True

    def test_edges_of(self, small_store):
        sig = SignatureFile(small_store)
        assert sig.edges_of("t1") == frozenset({0, 1})


class TestRareKeywordRule:
    def test_rare_terms_skip_signature(self, small_store):
        disk = DiskManager(buffer_pages=64)
        inv = InvertedFileIndex(small_store, disk)
        # Every term here fits in one postings page, so with the
        # paper's rule none gets a signature.
        sig = SignatureFile(small_store, inverted=inv, min_postings_pages=2)
        assert sig.num_signed_terms == 0
        assert set(sig.skipped_terms) == {"t1", "t2", "t3", "t4"}
        # And the test degenerates to always-pass.
        assert sig.test(2, {"t1", "t2"}) is True

    def test_threshold_one_signs_everything(self, small_store):
        disk = DiskManager(buffer_pages=64)
        inv = InvertedFileIndex(small_store, disk, file_prefix="if2")
        sig = SignatureFile(small_store, inverted=inv, min_postings_pages=1)
        assert sig.num_signed_terms == 4


class TestSizeAccounting:
    def test_bitmap_fallback_size(self, small_store):
        sig = SignatureFile(small_store)
        # The raw fallback reports the actual packed representation:
        # 4 edges -> one 64-bit word per row, 4 signed terms.
        assert sig.size_bytes() == 4 * 8

    def test_kd_compacted_size_smaller_for_dense_terms(self):
        from repro.spatial.kdtree import KDTreePartition

        network = RoadNetwork()
        for i in range(33):
            network.add_node(i, i * 10.0, 0.0)
        for i in range(32):
            network.add_edge(i, i + 1)
        store = ObjectStore(network)
        for e in range(32):
            store.add(NetworkPosition(e, 1.0), {"everywhere"})
        store.add(NetworkPosition(7, 2.0), {"once"})
        store.freeze()
        kd = KDTreePartition([e.center for e in network.edges()])
        sig = SignatureFile(store, kd_partition=kd)
        dense = kd.compact_size_bytes(sig.edges_of("everywhere"))
        sparse = kd.compact_size_bytes(sig.edges_of("once"))
        # The uniformly-set bitmap collapses to almost nothing.
        assert dense < sparse
        assert sig.size_bytes() == dense + sparse
