"""Property tests: packed bitset signatures vs a set-model reference.

The packed ``uint64`` rows in :class:`PackedBitMatrix` (and the
:class:`SignatureFile` built on them) must be observationally identical
to the obvious reference model — a ``Dict[str, Set[int]]`` with the
conservative-True rule for unsigned terms.  Hypothesis drives random
interleavings of builds, dynamic set/clear churn and batched probes,
including the edge cases a fixed fixture misses: rows emptied by
clears (kept, prune everything), terms skipped by the rare-keyword
rule (never tighten the AND), and slot spaces that straddle 64-bit
word boundaries.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.inverted_file import InvertedFileIndex
from repro.index.signature import PackedBitMatrix, SignatureFile
from repro.network.graph import NetworkPosition, RoadNetwork
from repro.network.objects import ObjectStore
from repro.storage.pagefile import DiskManager

TERMS = ["a", "b", "c", "d"]

# Slot universes deliberately straddle the 64-bit word boundary.
slot_st = st.integers(0, 130)
term_st = st.sampled_from(TERMS)

op_st = st.one_of(
    st.tuples(st.just("set"), term_st, slot_st),
    st.tuples(st.just("clear"), term_st, slot_st),
    st.tuples(st.just("bulk"), term_st, st.lists(slot_st, max_size=8)),
    st.tuples(st.just("drop"), term_st),
)


class SetModel:
    """The reference: plain per-term slot sets, no packing."""

    def __init__(self):
        self.rows = {}

    def apply(self, op):
        kind = op[0]
        if kind == "set":
            self.rows.setdefault(op[1], set()).add(op[2])
        elif kind == "clear":
            if op[1] in self.rows:
                self.rows[op[1]].discard(op[2])
        elif kind == "bulk":
            self.rows.setdefault(op[1], set()).update(op[2])
        elif kind == "drop":
            self.rows.pop(op[1], None)

    def combined_slots(self, keys):
        """Slots passing the AND of ``keys`` (all present by contract)."""
        out = None
        for k in keys:
            row = self.rows[k]
            out = set(row) if out is None else out & row
        return out


def apply_to_matrix(matrix, op):
    kind = op[0]
    if kind == "set":
        matrix.set(op[1], op[2])
    elif kind == "clear":
        matrix.clear(op[1], op[2])
    elif kind == "bulk":
        matrix.bulk_set(op[1], op[2])
    elif kind == "drop":
        matrix.drop_row(op[1])


@settings(max_examples=120, deadline=None)
@given(st.lists(op_st, max_size=30), st.lists(term_st, max_size=3))
def test_matrix_matches_set_model(ops, query_terms):
    matrix = PackedBitMatrix(8)
    model = SetModel()
    for op in ops:
        apply_to_matrix(matrix, op)
        model.apply(op)
    # Per-row contents.
    for term in TERMS:
        if term in model.rows:
            assert term in matrix
            assert matrix.slots_of(term) == frozenset(model.rows[term])
        else:
            assert term not in matrix
            assert matrix.slots_of(term) == frozenset()
    # Combined AND probes (only over present keys, per the contract).
    present = [t for t in query_terms if t in model.rows]
    combined = matrix.combined(present)
    if not present:
        assert combined is None
    expected = model.combined_slots(present)
    probe_slots = list(range(matrix.num_slots))
    got_many = matrix.probe_many(combined, probe_slots)
    for slot, bit in zip(probe_slots, got_many):
        want = True if expected is None else slot in expected
        assert bit == want
        assert matrix.probe(combined, slot) == want
    # probe_range over an arbitrary window agrees bit for bit.
    start, count = 3, max(0, matrix.num_slots - 3)
    in_range = matrix.probe_range(combined, start, count)
    want_range = [
        i for i in range(count)
        if (expected is None or (start + i) in expected)
    ]
    assert in_range == want_range


@settings(max_examples=60, deadline=None)
@given(st.lists(op_st, max_size=20))
def test_matrix_size_reflects_packed_rows(ops):
    matrix = PackedBitMatrix(8)
    for op in ops:
        apply_to_matrix(matrix, op)
    words = max(1, (matrix.num_slots + 63) // 64)
    assert matrix.num_words == words
    assert matrix.size_bytes() == matrix.num_rows * words * 8


# ----------------------------------------------------------------------
# SignatureFile semantics on a live store, with dynamic churn
# ----------------------------------------------------------------------

def _line_store(num_edges=6):
    network = RoadNetwork()
    for i in range(num_edges + 1):
        network.add_node(i, i * 100.0, 0.0)
    for i in range(num_edges):
        network.add_edge(i, i + 1)
    store = ObjectStore(network)
    return network, store


placement_st = st.lists(
    st.tuples(st.integers(0, 5), st.sets(term_st, min_size=1, max_size=3)),
    min_size=1,
    max_size=12,
)

dyn_op_st = st.lists(
    st.tuples(
        st.sampled_from(["set_bit", "clear_bit"]),
        st.integers(0, 5),
        term_st,
    ),
    max_size=15,
)


@settings(max_examples=60, deadline=None)
@given(placement_st, dyn_op_st, st.sets(term_st, max_size=3))
def test_signature_file_matches_reference(placements, dyn_ops, query):
    _network, store = _line_store()
    for edge_id, terms in placements:
        store.add(NetworkPosition(edge_id, 1.0), terms)
    store.freeze()
    sig = SignatureFile(store)

    # Reference: term -> set of edges, built then churned identically.
    ref = {}
    for edge_id, terms in placements:
        for t in terms:
            ref.setdefault(t, set()).add(edge_id)
    for kind, edge_id, term in dyn_ops:
        if kind == "set_bit":
            sig.set_bit(edge_id, term)
            ref.setdefault(term, set()).add(edge_id)
        else:
            sig.clear_bit(edge_id, term)
            if term in ref:
                ref[term].discard(edge_id)

    def ref_test(edge_id, terms):
        # Unsigned terms pass conservatively; signed must contain edge.
        return all(
            edge_id in ref[t] for t in terms if sig.has_signature(t)
        )

    edges = list(range(store.network.num_edges))
    expected = [ref_test(e, query) for e in edges]
    assert [sig.test(e, query) for e in edges] == expected
    assert sig.test_many(edges, query) == expected
    for t in TERMS:
        if sig.has_signature(t):
            assert sig.edges_of(t) == frozenset(ref.get(t, set()))


@settings(max_examples=40, deadline=None)
@given(dyn_op_st, st.sets(term_st, min_size=1, max_size=3))
def test_skipped_terms_never_prune_even_after_churn(dyn_ops, query):
    """The rare-keyword rule survives dynamic maintenance untouched."""
    _network, store = _line_store()
    store.add(NetworkPosition(0, 1.0), set(TERMS))
    store.freeze()
    disk = DiskManager(buffer_pages=16)
    inv = InvertedFileIndex(store, disk, file_prefix="bitprop")
    sig = SignatureFile(store, inverted=inv, min_postings_pages=2)
    assert sig.num_signed_terms == 0
    for kind, edge_id, term in dyn_ops:
        getattr(sig, kind)(edge_id, term)
    # Skipped terms ignore set/clear entirely: every probe still passes.
    edges = list(range(store.network.num_edges))
    assert all(sig.test(e, query) for e in edges)
    assert sig.test_many(edges, query) == [True] * len(edges)


def test_emptied_row_prunes_everything():
    """Clearing a signed term's last bit must prune, not pass-open."""
    _network, store = _line_store()
    store.add(NetworkPosition(2, 1.0), {"a"})
    store.freeze()
    sig = SignatureFile(store)
    assert sig.test(2, {"a"}) is True
    sig.clear_bit(2, "a")
    assert sig.has_signature("a")  # the row survives, emptied
    assert sig.edges_of("a") == frozenset()
    for e in range(store.network.num_edges):
        assert sig.test(e, {"a"}) is False


def test_probe_out_of_range_fails_closed():
    matrix = PackedBitMatrix(4)
    matrix.set("a", 1)
    combined = matrix.combined(["a"])
    assert matrix.probe(combined, 1) is True
    assert matrix.probe(combined, -1) is False
    assert matrix.probe(combined, 99) is False


def test_combined_cache_invalidated_by_mutation():
    matrix = PackedBitMatrix(4)
    matrix.set("a", 0)
    combined = matrix.combined(["a"])
    assert matrix.probe(combined, 0) is True
    matrix.clear("a", 0)
    fresh = matrix.combined(["a"])
    assert matrix.probe(fresh, 0) is False
