"""End-to-end integration: every index, both search modes, one dataset.

These tests exercise the full pipeline — dataset generation, CCAM
layout, index construction, INE expansion, diversified search — and
cross-check every access path against every other.
"""

import pytest

from repro.workloads.queries import (
    WorkloadConfig,
    generate_diversified_queries,
    generate_sk_queries,
)


@pytest.fixture(scope="module")
def sk_queries(tiny_db):
    return generate_sk_queries(
        tiny_db, WorkloadConfig(num_queries=20, num_keywords=2, seed=123)
    )


class TestAllIndexesAgree:
    def test_sk_results_identical_across_indexes(
        self, tiny_db, tiny_indexes, sk_queries
    ):
        for q in sk_queries:
            results = {}
            for kind, index in tiny_indexes.items():
                r = tiny_db.sk_search(index, q)
                results[kind] = sorted(r.object_ids())
            baseline = results["ccam"]
            for kind, ids in results.items():
                assert ids == baseline, f"{kind} diverges on {sorted(q.terms)}"

    def test_distances_identical_across_indexes(
        self, tiny_db, tiny_indexes, sk_queries
    ):
        for q in sk_queries[:8]:
            per_kind = {}
            for kind, index in tiny_indexes.items():
                r = tiny_db.sk_search(index, q)
                per_kind[kind] = {
                    it.object.object_id: it.distance for it in r
                }
            baseline = per_kind["ccam"]
            for kind, dists in per_kind.items():
                for oid, d in dists.items():
                    assert d == pytest.approx(baseline[oid], abs=1e-6)


class TestIOOrdering:
    """The paper's headline orderings, on the shared tiny dataset."""

    def test_signature_reduces_io_vs_plain_inverted(
        self, tiny_db, tiny_indexes, sk_queries
    ):
        from repro.workloads.runner import run_sk_workload

        reports = {
            kind: run_sk_workload(
                tiny_db, tiny_indexes[kind], sk_queries, cold_buffer=True
            )
            for kind in ("if", "sif")
        }
        assert (
            reports["sif"].total_physical_reads
            <= reports["if"].total_physical_reads
        )

    def test_inverted_beats_full_scan_on_loads(
        self, tiny_db, tiny_indexes, sk_queries
    ):
        ccam = tiny_indexes["ccam"]
        inv = tiny_indexes["if"]
        ccam.counters.reset()
        inv.counters.reset()
        for q in sk_queries:
            tiny_db.sk_search(ccam, q)
            tiny_db.sk_search(inv, q)
        assert inv.counters.objects_loaded <= ccam.counters.objects_loaded


class TestDiversifiedPipeline:
    def test_seq_and_com_agree_across_indexes(self, tiny_db, tiny_indexes):
        queries = generate_diversified_queries(
            tiny_db, WorkloadConfig(num_queries=6, num_keywords=2, k=4, seed=321)
        )
        for q in queries:
            values = []
            for kind in ("if", "sif", "sif-p"):
                for method in ("seq", "com"):
                    r = tiny_db.diversified_search(
                        tiny_indexes[kind], q, method=method
                    )
                    values.append(r.objective_value)
            assert max(values) - min(values) < 1e-6

    def test_com_early_termination_happens_somewhere(self, tiny_db, tiny_indexes):
        # The tiny network has ~700-unit edges, so a wide search radius
        # is needed for the expansion to outlive the core pairs.
        queries = generate_diversified_queries(
            tiny_db,
            WorkloadConfig(num_queries=20, num_keywords=1, k=4, seed=7,
                           lambda_=0.9, delta_max=4000.0),
        )
        early = 0
        for q in queries:
            r = tiny_db.diversified_search(tiny_indexes["sif"], q, method="com")
            early += r.stats.expansion_terminated_early
        assert early >= 1
