"""Property tests on randomly generated networks and datasets.

Each case builds a fresh small world — random planar network, random
objects, random query — and checks the full pipeline against brute
force.  These are the heaviest guards against structural bugs that a
fixed fixture might never exercise (degenerate edges, dead-end nodes,
objects at offsets 0/weight, queries on empty edges...).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import Database
from repro.core.ine import INEExpansion
from repro.core.knn import SKkNNQuery, knn_search
from repro.datasets.generator import populate_objects
from repro.datasets.synthetic import random_planar_network
from repro.network.distance import network_distance


def build_world(seed):
    rng = np.random.default_rng(seed)
    network = random_planar_network(int(rng.integers(20, 60)), seed=seed)
    db = Database(network, buffer_pages=64)
    populate_objects(
        db.store,
        num_objects=int(rng.integers(30, 150)),
        vocabulary_size=12,
        avg_keywords=3,
        zipf_z=0.7,
        seed=seed + 1,
        num_topics=1,
    )
    db.freeze()
    return db, rng


def random_query(db, rng, num_terms):
    objects = list(db.store)
    obj = objects[int(rng.integers(0, len(objects)))]
    keys = sorted(obj.keywords)
    take = min(num_terms, len(keys))
    idx = rng.choice(len(keys), size=take, replace=False)
    terms = frozenset(keys[int(i)] for i in idx)
    delta_max = float(rng.uniform(500, 6000))
    return obj.position, terms, delta_max


def brute_force(db, position, terms, delta_max):
    out = {}
    for obj in db.store:
        if not obj.contains_all(terms):
            continue
        d = network_distance(
            db.network, db.network, position, obj.position, cutoff=delta_max
        )
        if d <= delta_max:
            out[obj.object_id] = d
    return out


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10**6), st.integers(1, 3))
def test_sk_search_matches_brute_force_on_random_worlds(seed, num_terms):
    db, rng = build_world(seed % 7)  # few worlds, many queries
    index = db.build_index("sif", file_prefix=f"prop-{seed}")
    position, terms, delta_max = random_query(db, rng, num_terms)
    expansion = INEExpansion(
        db.ccam, db.network, index, position, terms, delta_max
    )
    got = {it.object.object_id: it.distance for it in expansion.run()}
    expected = brute_force(db, position, terms, delta_max)
    assert set(got) == set(expected)
    for oid, d in expected.items():
        assert got[oid] == pytest.approx(d, abs=1e-6)


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10**6))
def test_knn_is_prefix_of_range_stream(seed):
    db, rng = build_world(seed % 5)
    index = db.build_index("sif", file_prefix=f"knnprop-{seed}")
    position, terms, _ = random_query(db, rng, 1)
    k = int(rng.integers(1, 6))
    knn = knn_search(
        db.ccam, db.network, index,
        SKkNNQuery.create(position, terms, k=k, horizon=50000.0),
    )
    full = INEExpansion(
        db.ccam, db.network, index, position, terms, 50000.0
    ).run_to_completion()
    expected = full[: len(knn.items)]
    assert [it.distance for it in knn] == pytest.approx(
        [it.distance for it in expected]
    )


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6))
def test_seq_equals_com_on_random_worlds(seed):
    db, rng = build_world(seed % 5)
    index = db.build_index("sif", file_prefix=f"divprop-{seed}")
    position, terms, delta_max = random_query(db, rng, 1)
    from repro.core.queries import DiversifiedSKQuery

    k = int(rng.integers(2, 7))
    lam = float(rng.uniform(0.1, 1.0))
    query = DiversifiedSKQuery(position, terms, delta_max, k, lam)
    seq = db.diversified_search(index, query, method="seq")
    com = db.diversified_search(index, query, method="com")
    assert com.objective_value == pytest.approx(
        seq.objective_value, rel=1e-6, abs=1e-9
    )
    assert len(seq) == len(com)
