"""Tests for the CCAM disk layout."""

import pytest

from repro.datasets.synthetic import grid_network
from repro.errors import GraphError
from repro.network.ccam import CCAMStore
from repro.network.distance import single_source_distances
from repro.storage.pagefile import DiskManager


@pytest.fixture()
def ccam_setup():
    network = grid_network(12, 12, seed=3)
    disk = DiskManager(buffer_pages=4)
    ccam = CCAMStore(network, disk)
    return network, disk, ccam


class TestLayout:
    def test_every_node_is_mapped(self, ccam_setup):
        network, _disk, ccam = ccam_setup
        for node in network.nodes():
            assert ccam.page_of(node.node_id) >= 0

    def test_adjacency_matches_in_memory(self, ccam_setup):
        network, _disk, ccam = ccam_setup
        for node in network.nodes():
            expected = sorted(network.neighbors(node.node_id))
            got = sorted(ccam.neighbors(node.node_id))
            assert got == expected

    def test_unknown_node_raises(self, ccam_setup):
        _network, _disk, ccam = ccam_setup
        with pytest.raises(GraphError):
            ccam.neighbors(10_000)

    def test_multiple_nodes_per_page(self, ccam_setup):
        network, _disk, ccam = ccam_setup
        # 144 nodes with small adjacency lists fit in far fewer pages.
        assert ccam.num_pages < network.num_nodes / 10

    def test_spatial_locality_of_pages(self, ccam_setup):
        """Z-order clustering: neighbours often share a page."""
        network, _disk, ccam = ccam_setup
        same_page = total = 0
        for edge in network.edges():
            total += 1
            if ccam.page_of(edge.n1) == ccam.page_of(edge.n2):
                same_page += 1
        # A random assignment over ~10 pages would co-locate ~10 %.
        assert same_page / total > 0.25


class TestIOCharging:
    def test_neighbor_access_charges_reads(self, ccam_setup):
        _network, disk, ccam = ccam_setup
        disk.stats.reset()
        ccam.neighbors(0)
        assert disk.stats.logical_reads == 1

    def test_buffered_second_access(self, ccam_setup):
        _network, disk, ccam = ccam_setup
        ccam.neighbors(0)
        disk.stats.reset()
        ccam.neighbors(0)
        assert disk.stats.buffer_hits == 1
        assert disk.stats.physical_reads == 0

    def test_dijkstra_through_ccam_charges_io(self, ccam_setup):
        network, disk, ccam = ccam_setup
        disk.stats.reset()
        pos = network.node_position(0)
        dist_io = single_source_distances(ccam, network, pos)
        assert disk.stats.logical_reads > 0
        # Same result as the uncharged in-memory traversal.
        dist_mem = single_source_distances(network, network, pos)
        assert dist_io == dist_mem

    def test_locality_yields_buffer_hits(self, ccam_setup):
        network, disk, ccam = ccam_setup
        disk.stats.reset()
        single_source_distances(ccam, network, network.node_position(0))
        assert disk.stats.buffer_hits > disk.stats.physical_reads
