"""Contraction-Hierarchies oracle tests.

The load-bearing property: CH answers are *identical* to the bounded-
Dijkstra backend — exact distances, the same-edge rule, and the cutoff
→ inf contract — on every input, including randomly generated connected
road networks.
"""

import math
import random

import networkx as nx
import pytest

from repro.datasets.synthetic import grid_network, random_planar_network
from repro.errors import GraphError
from repro.network.ch import ContractionHierarchy
from repro.network.distance import (
    BackendCounters,
    PairwiseDistanceComputer,
    network_distance,
)
from repro.network.graph import NetworkPosition, RoadNetwork


def to_networkx(network):
    g = nx.Graph()
    for edge in network.edges():
        g.add_edge(edge.n1, edge.n2, weight=edge.weight)
    return g


def random_positions(network, rng, count):
    edges = list(network.edges())
    out = []
    for _ in range(count):
        edge = rng.choice(edges)
        out.append(NetworkPosition(edge.edge_id, rng.random() * edge.weight))
    return out


class TestConstruction:
    def test_rank_is_a_permutation(self):
        network = random_planar_network(60, seed=3)
        ch = ContractionHierarchy(network)
        assert sorted(ch.rank.values()) == list(range(network.num_nodes))

    def test_upward_edges_point_upward(self):
        network = random_planar_network(60, seed=3)
        ch = ContractionHierarchy(network)
        for node, edges in ch._up.items():
            for other, weight in edges:
                assert ch.rank[other] > ch.rank[node]
                assert weight > 0

    def test_shortcuts_on_a_path_graph_are_zero_or_cheap(self, line_network):
        # A path graph never *needs* shortcuts: contracting any interior
        # node leaves its two neighbours connected through... the
        # shortcut.  Witness searches can't avoid those, but a line of 5
        # nodes stays tiny.
        ch = ContractionHierarchy(line_network)
        assert ch.num_nodes == 5
        assert ch.upward_edges >= 4  # at least the original edges

    def test_stats_dict(self):
        network = random_planar_network(40, seed=9)
        ch = ContractionHierarchy(network)
        stats = ch.stats()
        assert stats["nodes"] == 40
        assert stats["upward_edges"] == ch.upward_edges
        assert stats["preprocess_seconds"] >= 0.0
        assert stats["shortcuts_added"] == ch.shortcuts_added

    def test_empty_network_rejected(self):
        with pytest.raises(GraphError):
            ContractionHierarchy(RoadNetwork())

    def test_bad_witness_budget_rejected(self, line_network):
        with pytest.raises(GraphError):
            ContractionHierarchy(line_network, max_witness_settled=0)

    def test_single_node_network(self):
        network = RoadNetwork()
        network.add_node(0, 0.0, 0.0)
        ch = ContractionHierarchy(network)
        assert ch.node_distance(0, 0) == 0.0


class TestNodeDistances:
    @pytest.mark.parametrize("seed", [0, 1, 2, 7, 19])
    def test_all_pairs_match_networkx_on_random_networks(self, seed):
        network = random_planar_network(50, seed=seed)
        ch = ContractionHierarchy(network)
        g = to_networkx(network)
        expected = dict(nx.all_pairs_dijkstra_path_length(g))
        nodes = [n.node_id for n in network.nodes()]
        for a in nodes:
            for b in nodes:
                assert ch.node_distance(a, b) == pytest.approx(
                    expected[a][b]
                ), (seed, a, b)

    def test_all_pairs_on_a_grid(self):
        network = grid_network(5, 5, seed=2)
        ch = ContractionHierarchy(network)
        g = to_networkx(network)
        expected = dict(nx.all_pairs_dijkstra_path_length(g))
        nodes = [n.node_id for n in network.nodes()]
        for a in nodes:
            for b in nodes:
                assert ch.node_distance(a, b) == pytest.approx(expected[a][b])

    def test_tight_witness_budget_stays_exact(self):
        # An exhausted witness budget adds redundant shortcuts, never
        # wrong ones — answers must not change.
        network = random_planar_network(50, seed=13)
        generous = ContractionHierarchy(network)
        stingy = ContractionHierarchy(network, max_witness_settled=1)
        assert stingy.shortcuts_added >= generous.shortcuts_added
        nodes = [n.node_id for n in network.nodes()]
        rng = random.Random(13)
        for _ in range(300):
            a, b = rng.choice(nodes), rng.choice(nodes)
            assert stingy.node_distance(a, b) == pytest.approx(
                generous.node_distance(a, b)
            )

    def test_cutoff_contract(self):
        network = random_planar_network(50, seed=5)
        ch = ContractionHierarchy(network)
        nodes = [n.node_id for n in network.nodes()]
        rng = random.Random(5)
        for _ in range(200):
            a, b = rng.choice(nodes), rng.choice(nodes)
            exact = ch.node_distance(a, b)
            cutoff = rng.random() * 2.0 * max(exact, 1e-9)
            bounded = ch.node_distance(a, b, cutoff=cutoff)
            if exact <= cutoff:
                assert bounded == pytest.approx(exact)
            else:
                assert bounded == math.inf


class TestPositionDistances:
    @pytest.mark.parametrize("seed", [0, 4, 11, 23])
    def test_sampled_positions_match_dijkstra_backend(self, seed):
        network = random_planar_network(80, seed=seed)
        ch = ContractionHierarchy(network)
        rng = random.Random(seed)
        positions = random_positions(network, rng, 40)
        for a in positions:
            for b in positions:
                assert ch.position_distance(a, b) == pytest.approx(
                    network_distance(network, network, a, b)
                ), (seed, a, b)

    def test_same_edge_short_circuit(self):
        network = random_planar_network(40, seed=8)
        edge = next(iter(network.edges()))
        ch = ContractionHierarchy(network)
        a = NetworkPosition(edge.edge_id, 0.25 * edge.weight)
        b = NetworkPosition(edge.edge_id, 0.75 * edge.weight)
        # The paper's fiat rule: same edge → |offset difference|, even
        # when a shorter around-the-block path exists, and regardless of
        # any cutoff — exactly like the Dijkstra backend.
        assert ch.position_distance(a, b) == pytest.approx(0.5 * edge.weight)
        assert ch.position_distance(a, b, cutoff=1e-12) == pytest.approx(
            0.5 * edge.weight
        )
        assert ch.position_distance(a, b) == pytest.approx(
            network_distance(network, network, a, b)
        )

    def test_cutoff_matches_dijkstra_backend(self):
        network = random_planar_network(60, seed=21)
        ch = ContractionHierarchy(network)
        rng = random.Random(21)
        positions = random_positions(network, rng, 30)
        for _ in range(200):
            a, b = rng.choice(positions), rng.choice(positions)
            cutoff = rng.random() * 3.0
            got = ch.position_distance(a, b, cutoff=cutoff)
            want = network_distance(network, network, a, b, cutoff=cutoff)
            if want == math.inf:
                assert got == math.inf
            else:
                assert got == pytest.approx(want)

    def test_counters_charged(self):
        network = random_planar_network(40, seed=6)
        ch = ContractionHierarchy(network)
        rng = random.Random(6)
        a, b = random_positions(network, rng, 2)
        counters = BackendCounters()
        ch.position_distance(a, b, counters=counters)
        if a.edge_id == b.edge_id:  # pragma: no cover — seed-dependent
            assert counters.queries == 0
        else:
            assert counters.queries == 1
            assert counters.settled_nodes > 0


class TestManyToMany:
    def test_matrix_equals_point_queries(self):
        network = random_planar_network(70, seed=15)
        ch = ContractionHierarchy(network)
        rng = random.Random(15)
        positions = random_positions(network, rng, 30)
        counters = BackendCounters()
        matrix = ch.position_matrix(positions, counters=counters)
        n = len(positions)
        assert set(matrix) == {
            (i, j) for i in range(n) for j in range(i + 1, n)
        }
        for (i, j), d in matrix.items():
            assert d == pytest.approx(
                ch.position_distance(positions[i], positions[j])
            )
        assert counters.queries == n
        assert counters.matrix_cells == n * (n - 1) // 2
        assert counters.bucket_hits > 0

    def test_matrix_honours_cutoff(self):
        network = random_planar_network(70, seed=16)
        ch = ContractionHierarchy(network)
        rng = random.Random(16)
        positions = random_positions(network, rng, 20)
        cutoff = 1.5
        matrix = ch.position_matrix(positions, cutoff=cutoff)
        for (i, j), d in matrix.items():
            want = ch.position_distance(
                positions[i], positions[j], cutoff=cutoff
            )
            if want == math.inf:
                assert d == math.inf
            else:
                assert d == pytest.approx(want)

    def test_matrix_same_edge_pairs(self):
        network = random_planar_network(40, seed=18)
        edge = next(iter(network.edges()))
        ch = ContractionHierarchy(network)
        positions = [
            NetworkPosition(edge.edge_id, 0.1 * edge.weight),
            NetworkPosition(edge.edge_id, 0.9 * edge.weight),
        ]
        matrix = ch.position_matrix(positions)
        assert matrix[(0, 1)] == pytest.approx(0.8 * edge.weight)

    def test_trivial_inputs(self):
        network = random_planar_network(40, seed=19)
        ch = ContractionHierarchy(network)
        assert ch.position_matrix([]) == {}
        rng = random.Random(19)
        (a,) = random_positions(network, rng, 1)
        assert ch.position_matrix([a]) == {}


class TestComputerIntegration:
    def test_backend_computer_matches_dijkstra_computer(self):
        network = random_planar_network(60, seed=29)
        ch = ContractionHierarchy(network)
        rng = random.Random(29)
        positions = random_positions(network, rng, 20)
        plain = PairwiseDistanceComputer(network, network)
        backed = PairwiseDistanceComputer(network, network, backend=ch)
        assert backed.backend_name == "ch"
        assert plain.backend_name == "dijkstra"
        want = plain.pairwise(positions)
        got = backed.pairwise(positions)
        assert set(got) == set(want)
        for key, d in want.items():
            if d == math.inf:
                assert got[key] == math.inf
            else:
                assert got[key] == pytest.approx(d)
        # The matrix was served by one many-to-many prefetch: the
        # per-pair loop then hits the computer's pair cache (same-edge
        # pairs short-circuit before the cache and don't count).
        assert backed.backend_counters.queries == len(positions)
        cross_edge = sum(
            1 for (i, j) in want
            if positions[i].edge_id != positions[j].edge_id
        )
        assert backed.cache_hits >= cross_edge
        assert backed.dijkstra_runs == 0
        assert backed.pairwise_seconds >= backed.backend_seconds

    @pytest.mark.parametrize("seed", [7, 13, 37])
    def test_bounded_computers_agree_on_inf_contract(self, seed):
        """With a finite cutoff, both backends clamp identically.

        The backend path historically returned the raw oracle answer;
        now both paths return ``inf`` exactly when the distance exceeds
        the computer's cutoff, so SEQ/COM see one contract regardless
        of ``--distance-backend``.
        """
        network = random_planar_network(60, seed=seed)
        ch = ContractionHierarchy(network)
        rng = random.Random(seed)
        positions = random_positions(network, rng, 20)
        for cutoff in (0.5, 1.5, 4.0):
            plain = PairwiseDistanceComputer(network, network, cutoff=cutoff)
            backed = PairwiseDistanceComputer(
                network, network, cutoff=cutoff, backend=ch
            )
            for a in positions:
                for b in positions:
                    want = plain.distance(a, b)
                    got = backed.distance(a, b)
                    if want == math.inf:
                        assert got == math.inf, (seed, cutoff, a, b)
                    else:
                        assert got == pytest.approx(want), (seed, cutoff, a, b)
                    if a.edge_id != b.edge_id:
                        # Same-edge pairs bypass the cutoff by the
                        # paper's fiat rule; every other answer honours
                        # the inf-beyond-cutoff contract.
                        assert got <= cutoff or got == math.inf

    def test_prefetch_noop_without_backend(self):
        network = random_planar_network(40, seed=31)
        rng = random.Random(31)
        positions = random_positions(network, rng, 5)
        plain = PairwiseDistanceComputer(network, network)
        assert plain.prefetch(positions) == 0
