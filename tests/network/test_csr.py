"""CSR snapshot tests: round-trip fidelity and array-kernel parity.

The load-bearing properties: (a) ``CSRGraph.from_network`` is a
faithful snapshot — every adjacency entry, weight and on-edge object
offset survives the trip, proven by ``validate_roundtrip`` on random
connected networks; (b) the array-heap Dijkstra behind the shared
traversal seam returns *identical* results to the dict kernel — same
distances, same settle order, same ``ignore``/``targets``/
``max_settled`` contracts — so every consumer (landmark selection
included) is oblivious to which representation it was handed.
"""

import math
import random
from types import SimpleNamespace

import pytest

from repro.datasets.synthetic import grid_network, random_planar_network
from repro.errors import DependencyError, GraphError
from repro.network.csr import CSRGraph
from repro.network.distance import (
    node_source_distances,
    seeded_distances,
    single_source_distances,
)
from repro.network.graph import NetworkPosition
from repro.network.landmarks import LandmarkIndex
from repro.network.objects import ObjectStore


def random_positions(network, rng, count):
    edges = list(network.edges())
    out = []
    for _ in range(count):
        edge = rng.choice(edges)
        out.append(NetworkPosition(edge.edge_id, rng.random() * edge.weight))
    return out


class TestRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1, 5, 17, 42])
    def test_random_networks_round_trip(self, seed):
        network = random_planar_network(60, seed=seed)
        csr = CSRGraph.from_network(network)
        csr.validate_roundtrip(network)
        assert csr.num_nodes == network.num_nodes
        assert csr.num_entries == 2 * network.num_edges

    def test_grid_round_trips(self):
        network = grid_network(6, 5, seed=3)
        CSRGraph.from_network(network).validate_roundtrip(network)

    def test_neighbors_protocol_matches_network(self):
        network = random_planar_network(40, seed=7)
        csr = CSRGraph.from_network(network)
        for node in network.nodes():
            assert sorted(csr.neighbors(node.node_id)) == sorted(
                network.neighbors(node.node_id)
            )

    @pytest.mark.parametrize("seed", [3, 9, 27])
    def test_object_offsets_round_trip(self, seed):
        network = random_planar_network(50, seed=seed)
        store = ObjectStore(network)
        rng = random.Random(seed)
        for pos in random_positions(network, rng, 60):
            store.add(pos, ["term"])
        store.freeze()
        csr = CSRGraph.from_network(network, store=store)
        csr.validate_roundtrip(network, store=store)
        assert len(csr.object_ids) == 60
        # Offsets are carried verbatim, sorted by object id.
        by_id = {o.object_id: o for o in store}
        for i, oid in enumerate(csr.object_ids.tolist()):
            assert csr.object_offsets[i] == pytest.approx(
                by_id[oid].position.offset
            )
            assert int(csr.object_edge_ids[i]) == by_id[oid].position.edge_id

    def test_weight_drift_detected(self):
        network = random_planar_network(30, seed=4)
        csr = CSRGraph.from_network(network)
        edge = next(iter(network.edges()))
        network.update_edge_weight(edge.edge_id, edge.weight * 2.0)
        with pytest.raises(GraphError, match="weight drift|degree|adjacency"):
            csr.validate_roundtrip(network)

    def test_injected_self_loop_is_carried_and_flagged(self):
        # RoadNetwork.add_edge rejects self-loops, so inject one the way
        # the dynamic-distance tests do; the snapshot must carry it
        # faithfully and the validator must name the structural defect.
        network = random_planar_network(20, seed=6)
        eid = network.num_edges
        network._edges[eid] = SimpleNamespace(
            edge_id=eid, n1=4, n2=4, weight=1.0
        )
        network._adjacency[4].append((eid, 4, 1.0))
        csr = CSRGraph.from_network(network)
        assert (eid, 4, 1.0) in csr.neighbors(4)  # faithful carry
        with pytest.raises(GraphError, match="self-loop"):
            csr.validate_roundtrip(network)

    def test_injected_parallel_edge_is_carried_and_flagged(self):
        network = random_planar_network(20, seed=8)
        a, b = next((e.n1, e.n2) for e in network.edges())
        eid = network.num_edges
        network._edges[eid] = SimpleNamespace(
            edge_id=eid, n1=a, n2=b, weight=2.5
        )
        network._adjacency[a].append((eid, b, 2.5))
        network._adjacency[b].append((eid, a, 2.5))
        csr = CSRGraph.from_network(network)
        assert (eid, b, 2.5) in csr.neighbors(a)
        with pytest.raises(GraphError, match="parallel"):
            csr.validate_roundtrip(network)

    def test_store_mismatch_detected(self):
        network = random_planar_network(30, seed=11)
        store = ObjectStore(network)
        rng = random.Random(11)
        for pos in random_positions(network, rng, 5):
            store.add(pos, ["x"])
        store.freeze()
        csr = CSRGraph.from_network(network)  # built WITHOUT the store
        with pytest.raises(GraphError, match="object"):
            csr.validate_roundtrip(network, store=store)


class TestArrayKernelParity:
    @pytest.mark.parametrize("seed", [0, 4, 11, 23])
    def test_node_source_distances_identical(self, seed):
        network = random_planar_network(60, seed=seed)
        csr = CSRGraph.from_network(network)
        rng = random.Random(seed)
        nodes = [n.node_id for n in network.nodes()]
        for _ in range(10):
            src = rng.choice(nodes)
            for cutoff in (math.inf, 2.0, 0.5):
                want = node_source_distances(network, src, cutoff=cutoff)
                got = node_source_distances(csr, src, cutoff=cutoff)
                # Same mapping AND same settle (iteration) order.
                assert list(got.items()) == pytest.approx(list(want.items()))
                assert list(got) == list(want)

    @pytest.mark.parametrize("seed", [2, 13])
    def test_single_source_distances_identical(self, seed):
        network = random_planar_network(50, seed=seed)
        csr = CSRGraph.from_network(network)
        rng = random.Random(seed)
        for pos in random_positions(network, rng, 8):
            want = single_source_distances(network, network, pos)
            got = single_source_distances(csr, network, pos)
            assert list(got.items()) == pytest.approx(list(want.items()))

    def test_ignore_targets_max_settled_contracts(self):
        network = random_planar_network(50, seed=19)
        csr = CSRGraph.from_network(network)
        rng = random.Random(19)
        nodes = [n.node_id for n in network.nodes()]
        for _ in range(15):
            src, blocked = rng.sample(nodes, 2)
            targets = rng.sample(nodes, 4)
            for kwargs in (
                {"ignore": blocked},
                {"targets": targets},
                {"max_settled": 7},
                {"ignore": blocked, "targets": targets, "max_settled": 12},
            ):
                want = seeded_distances(network, {src: 0.0}, 3.0, **kwargs)
                got = seeded_distances(csr, {src: 0.0}, 3.0, **kwargs)
                assert list(got) == list(want)
                assert got == pytest.approx(want)

    def test_multi_seed_parity(self):
        network = random_planar_network(40, seed=31)
        csr = CSRGraph.from_network(network)
        rng = random.Random(31)
        nodes = [n.node_id for n in network.nodes()]
        seeds = {nid: rng.random() for nid in rng.sample(nodes, 3)}
        want = seeded_distances(network, dict(seeds), 4.0)
        got = seeded_distances(csr, dict(seeds), 4.0)
        assert list(got.items()) == pytest.approx(list(want.items()))

    def test_seeds_above_cutoff_never_enter(self):
        network = random_planar_network(30, seed=37)
        csr = CSRGraph.from_network(network)
        out = seeded_distances(csr, {0: 5.0}, 1.0)
        assert out == {}

    @pytest.mark.parametrize("seed", [5, 21])
    def test_landmark_selection_identical(self, seed):
        # Landmarks pick farthest-first over node_source_distances; the
        # identical settle order means identical landmark choices and
        # identical upper bounds through either representation.
        network = random_planar_network(50, seed=seed)
        csr = CSRGraph.from_network(network)
        lm_net = LandmarkIndex(network, network, num_landmarks=3)
        lm_csr = LandmarkIndex(csr, network, num_landmarks=3)
        assert lm_csr.landmarks == lm_net.landmarks
        rng = random.Random(seed)
        for a, b in zip(
            random_positions(network, rng, 10),
            random_positions(network, rng, 10),
        ):
            assert lm_csr.upper_bound(a, b) == pytest.approx(
                lm_net.upper_bound(a, b)
            )


class TestNumpyGate:
    def test_missing_numpy_raises_dependency_error(self, monkeypatch):
        import repro.network.csr as csr_mod
        import repro.nplib as nplib

        monkeypatch.setattr(nplib, "np", None)
        monkeypatch.setattr(csr_mod, "np", None, raising=False)
        with pytest.raises(DependencyError, match="numpy"):
            CSRGraph.from_network(random_planar_network(10, seed=1))
