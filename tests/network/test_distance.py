"""Network-distance tests, cross-checked against networkx as an oracle."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import heapq

from repro.datasets.synthetic import random_planar_network
from repro.network.distance import (
    PairwiseDistanceComputer,
    network_distance,
    node_source_distances,
    position_distance_from_node_map,
    seed_distances,
    single_source_distances,
)
from repro.network.graph import NetworkPosition


def to_networkx(network):
    g = nx.Graph()
    for edge in network.edges():
        g.add_edge(edge.n1, edge.n2, weight=edge.weight)
    return g


class TestSeedDistances:
    def test_seeds_on_line(self, line_network):
        pos = NetworkPosition(0, 30.0)
        seeds = seed_distances(line_network, pos)
        edge = line_network.edge(0)
        assert seeds[edge.n1] == pytest.approx(30.0)
        assert seeds[edge.n2] == pytest.approx(70.0)


class TestSingleSource:
    def test_line_distances(self, line_network):
        pos = NetworkPosition(0, 30.0)  # 30 along the first edge
        dist = single_source_distances(line_network, line_network, pos)
        assert dist[0] == pytest.approx(30)
        assert dist[1] == pytest.approx(70)
        assert dist[2] == pytest.approx(170)
        assert dist[4] == pytest.approx(370)

    def test_cutoff_prunes(self, line_network):
        pos = NetworkPosition(0, 30.0)
        dist = single_source_distances(line_network, line_network, pos, cutoff=100)
        assert 2 not in dist
        assert set(dist) == {0, 1}

    def test_matches_networkx(self, paper_network):
        g = to_networkx(paper_network)
        pos = paper_network.node_position(0)
        dist = single_source_distances(paper_network, paper_network, pos)
        expected = nx.single_source_dijkstra_path_length(g, 0)
        for node, d in expected.items():
            assert dist[node] == pytest.approx(d)

    def test_matches_networkx_on_random_network(self):
        network = random_planar_network(120, seed=4)
        g = to_networkx(network)
        pos = network.node_position(17)
        dist = single_source_distances(network, network, pos)
        expected = nx.single_source_dijkstra_path_length(g, 17)
        assert set(dist) == set(expected)
        for node, d in expected.items():
            assert dist[node] == pytest.approx(d)


def _reference_single_source(provider, network, pos, cutoff=math.inf):
    """The pre-optimisation Dijkstra: pushes every relaxation onto the
    heap (no tentative-distance domination check).  The heap-discipline
    tests assert the optimised kernels return *identical* node maps."""
    seeds = {
        node: d for node, d in seed_distances(network, pos).items()
        if d <= cutoff
    }
    dist = {}
    heap = [(d, node) for node, d in seeds.items()]
    heapq.heapify(heap)
    while heap:
        d, node = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        for _edge, other, weight in provider.neighbors(node):
            nd = d + weight
            if other not in dist and nd <= cutoff:
                heapq.heappush(heap, (nd, other))
    return dist


class TestHeapDiscipline:
    """The dominated-entry suppression must not change any node map."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("cutoff", [math.inf, 3000.0, 500.0])
    def test_single_source_identical_node_maps(self, seed, cutoff):
        import numpy as np

        network = random_planar_network(100, seed=seed)
        rng = np.random.default_rng(seed)
        edges = list(network.edges())
        for _ in range(10):
            edge = edges[int(rng.integers(len(edges)))]
            pos = NetworkPosition(
                edge.edge_id, float(rng.uniform(0, edge.weight))
            )
            got = single_source_distances(network, network, pos, cutoff=cutoff)
            want = _reference_single_source(network, network, pos, cutoff=cutoff)
            assert got == want  # identical keys AND values, exactly

    def test_node_source_matches_networkx(self):
        network = random_planar_network(90, seed=44)
        g = to_networkx(network)
        for source in (0, 13, 57):
            got = node_source_distances(network, source)
            want = nx.single_source_dijkstra_path_length(g, source)
            assert set(got) == set(want)
            for node, d in want.items():
                assert got[node] == pytest.approx(d)

    def test_node_source_cutoff_and_targets(self, paper_network):
        full = node_source_distances(paper_network, 0)
        bounded = node_source_distances(paper_network, 0, cutoff=15.0)
        assert bounded == {
            node: d for node, d in full.items() if d <= 15.0
        }
        early = node_source_distances(paper_network, 0, targets={1})
        assert early[1] == pytest.approx(full[1])

    def test_node_source_ignore_excludes_node(self, paper_network):
        # Ignoring node 4 severs every path through it — what CH
        # witness searches rely on.
        dist = node_source_distances(paper_network, 1, ignore=4)
        assert 4 not in dist
        assert dist[5] == pytest.approx(21.0)  # 1 -> 2 (12) -> 5 (9)

    def test_node_source_max_settled_budget(self, paper_network):
        dist = node_source_distances(paper_network, 0, max_settled=3)
        assert len(dist) == 3


class TestPointToPoint:
    def test_same_edge_rule(self, line_network):
        # Paper: δ(q, p) = w(q, p) when both lie on the same edge.
        a = NetworkPosition(0, 20.0)
        b = NetworkPosition(0, 90.0)
        assert network_distance(line_network, line_network, a, b) == pytest.approx(70)

    def test_cross_edge(self, line_network):
        a = NetworkPosition(0, 20.0)  # 20 from n0
        b = NetworkPosition(2, 50.0)  # edge n2-n3, 50 from n2
        # 80 to n1, 100 to n2, 50 into edge 2.
        assert network_distance(line_network, line_network, a, b) == pytest.approx(230)

    def test_symmetry(self, paper_network):
        a = NetworkPosition(0, 4.0)
        b = NetworkPosition(6, 3.0)
        d1 = network_distance(paper_network, paper_network, a, b)
        d2 = network_distance(paper_network, paper_network, b, a)
        assert d1 == pytest.approx(d2)

    def test_cutoff_returns_inf(self, line_network):
        a = NetworkPosition(0, 0.0)
        b = NetworkPosition(3, 90.0)
        assert network_distance(line_network, line_network, a, b, cutoff=100) == math.inf

    def test_seed_endpoint_beyond_cutoff(self, paper_network):
        """Regression: a seed end-node farther than the cutoff must be
        filtered, exactly as ``single_source_distances`` does."""
        edge12 = paper_network.edge_between(1, 2)
        a = NetworkPosition(edge12.edge_id, 11.0)  # n1 at 11, n2 at 1
        cutoff = 10.0
        dist = single_source_distances(
            paper_network, paper_network, a, cutoff=cutoff
        )
        assert 1 not in dist  # the far seed endpoint is beyond the cutoff
        assert dist[2] == pytest.approx(1.0)
        # Targets reachable through the near endpoint keep their exact
        # distance, and both code paths agree.
        edge25 = paper_network.edge_between(2, 5)
        b = NetworkPosition(edge25.edge_id, 4.0)
        d = network_distance(paper_network, paper_network, a, b, cutoff=cutoff)
        assert d == pytest.approx(5.0)  # a -> n2 (1) -> 4 into edge (2,5)
        assert d == pytest.approx(
            position_distance_from_node_map(paper_network, dist, b, source=a)
        )
        # Targets only reachable through the far seed endpoint are out.
        edge01 = paper_network.edge_between(0, 1)
        c = NetworkPosition(edge01.edge_id, 5.0)
        assert network_distance(
            paper_network, paper_network, a, c, cutoff=cutoff
        ) == math.inf

    def test_hand_checked_paper_network(self, paper_network):
        # q at node 1 (offset 10 on edge 0-1); object 3 into edge (4, 6).
        edge01 = paper_network.edge_between(0, 1)
        q = NetworkPosition(edge01.edge_id, 10.0)  # exactly node 1
        edge46 = paper_network.edge_between(4, 6)
        o = NetworkPosition(edge46.edge_id, 3.0)
        # n1 -> n4 = 5, plus 3 into the edge = 8.
        assert network_distance(
            paper_network, paper_network, q, o
        ) == pytest.approx(8.0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10**6))
    def test_random_pairs_match_networkx(self, seed):
        import numpy as np

        network = random_planar_network(60, seed=11)
        g = to_networkx(network)
        rng = np.random.default_rng(seed)
        edges = list(network.edges())
        e1, e2 = rng.choice(len(edges), size=2)
        ea, eb = edges[int(e1)], edges[int(e2)]
        a = NetworkPosition(ea.edge_id, float(rng.uniform(0, ea.weight)))
        b = NetworkPosition(eb.edge_id, float(rng.uniform(0, eb.weight)))
        got = network_distance(network, network, a, b)
        if ea.edge_id == eb.edge_id:
            assert got == pytest.approx(abs(a.offset - b.offset))
            return
        best = math.inf
        for na, da in ((ea.n1, a.offset), (ea.n2, ea.weight - a.offset)):
            for nb, db in ((eb.n1, b.offset), (eb.n2, eb.weight - b.offset)):
                best = min(
                    best,
                    da + nx.shortest_path_length(g, na, nb, weight="weight") + db,
                )
        assert got == pytest.approx(best)


class TestEquationOne:
    def test_position_distance_from_node_map(self, line_network):
        q = NetworkPosition(0, 0.0)
        node_map = single_source_distances(line_network, line_network, q)
        target = NetworkPosition(2, 25.0)
        d = position_distance_from_node_map(line_network, node_map, target)
        assert d == pytest.approx(225)

    def test_same_edge_shortcut_applies(self, line_network):
        q = NetworkPosition(1, 10.0)
        node_map = {1: 10.0, 2: 90.0}
        target = NetworkPosition(1, 60.0)
        d = position_distance_from_node_map(
            line_network, node_map, target, source=q
        )
        assert d == pytest.approx(50)

    def test_missing_nodes_gives_inf(self, line_network):
        d = position_distance_from_node_map(
            line_network, {}, NetworkPosition(0, 10.0)
        )
        assert d == math.inf


class TestPairwiseComputer:
    def test_caches_dijkstra_runs(self, paper_network):
        comp = PairwiseDistanceComputer(paper_network, paper_network)
        a = NetworkPosition(0, 2.0)
        b = NetworkPosition(5, 1.0)
        c = NetworkPosition(7, 1.0)
        comp.distance(a, b)
        comp.distance(a, c)
        assert comp.dijkstra_runs == 1  # both reuse the map of a

    def test_symmetry_and_consistency(self, paper_network):
        comp = PairwiseDistanceComputer(paper_network, paper_network)
        a = NetworkPosition(0, 2.0)
        b = NetworkPosition(5, 1.0)
        d_ab = comp.distance(a, b)
        d_ba = comp.distance(b, a)
        assert d_ab == pytest.approx(d_ba)
        assert d_ab == pytest.approx(
            network_distance(paper_network, paper_network, a, b)
        )

    def test_pairwise_matrix(self, paper_network):
        comp = PairwiseDistanceComputer(paper_network, paper_network)
        positions = [
            NetworkPosition(0, 1.0),
            NetworkPosition(3, 2.0),
            NetworkPosition(6, 3.0),
        ]
        matrix = comp.pairwise(positions)
        assert set(matrix) == {(0, 1), (0, 2), (1, 2)}
        for (i, j), d in matrix.items():
            assert d == pytest.approx(
                network_distance(
                    paper_network, paper_network, positions[i], positions[j]
                )
            )

    def test_cutoff_inf(self, line_network):
        comp = PairwiseDistanceComputer(line_network, line_network, cutoff=50)
        a = NetworkPosition(0, 0.0)
        b = NetworkPosition(3, 0.0)
        assert comp.distance(a, b) == math.inf
