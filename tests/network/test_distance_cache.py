"""Tests for the bounded LRU :class:`DistanceCache` and its use by
:class:`PairwiseDistanceComputer` (symmetric lookups, cutoff keying,
sharing across computers)."""

import math

import pytest

from repro.network.distance import (
    DistanceCache,
    PairwiseDistanceComputer,
    network_distance,
)
from repro.network.graph import NetworkPosition

INF = math.inf


class TestDistanceCacheUnit:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            DistanceCache(max_entries=0)
        with pytest.raises(ValueError):
            DistanceCache(max_entries=-5)

    def test_default_is_unbounded(self):
        assert DistanceCache().max_entries is None

    def test_multi_key_probe_counts_one_miss(self):
        cache = DistanceCache()
        assert cache.get((0, 0.0, INF), (1, 0.0, INF)) is None
        assert (cache.hits, cache.misses) == (0, 1)

    def test_hit_returns_matching_key_and_map(self):
        cache = DistanceCache()
        cache.put((3, 1.0, INF), {7: 0.5})
        found = cache.get((9, 9.0, INF), (3, 1.0, INF))
        assert found == ((3, 1.0, INF), {7: 0.5})
        assert (cache.hits, cache.misses) == (1, 0)

    def test_replacement_updates_entry_count(self):
        cache = DistanceCache(max_entries=10)
        key = (0, 0.0, INF)
        cache.put(key, {1: 1.0, 2: 2.0, 3: 3.0})
        assert cache.entries == 3
        cache.put(key, {1: 1.0})
        assert cache.entries == 1
        assert len(cache) == 1

    def test_lru_eviction_bounded_by_entries(self):
        cache = DistanceCache(max_entries=5)
        k1, k2, k3 = (1, 0.0, INF), (2, 0.0, INF), (3, 0.0, INF)
        two = {10: 0.0, 11: 1.0}
        cache.put(k1, dict(two))
        cache.put(k2, dict(two))
        cache.get(k1)            # k1 becomes most recently used
        cache.put(k3, dict(two))  # 6 entries > 5: k2 is the LRU victim
        assert cache.get(k2) is None
        assert cache.get(k1) is not None
        assert cache.get(k3) is not None
        assert cache.evictions == 1
        assert cache.entries <= 5

    def test_oversized_map_kept_until_next_put(self):
        cache = DistanceCache(max_entries=2)
        big = (1, 0.0, INF)
        cache.put(big, {i: 0.0 for i in range(10)})
        # The just-inserted map always stays, even over budget.
        assert len(cache) == 1 and cache.entries == 10
        cache.put((2, 0.0, INF), {0: 0.0})
        assert cache.get(big) is None
        assert cache.entries == 1

    def test_clear_drops_maps_keeps_counters(self):
        cache = DistanceCache()
        cache.put((1, 0.0, INF), {0: 0.0})
        cache.get((1, 0.0, INF))
        cache.get((9, 0.0, INF))
        cache.clear()
        assert len(cache) == 0 and cache.entries == 0
        assert cache.counters_snapshot() == (1, 1, 0)

    def test_stats_is_jsonable_summary(self):
        import json

        cache = DistanceCache(max_entries=100)
        cache.put((1, 0.0, INF), {0: 0.0})
        stats = cache.stats()
        assert {"maps", "entries", "max_entries", "hits", "misses",
                "evictions"} <= set(stats)
        json.dumps(stats)


class TestSymmetricLookup:
    """Satellite fix: ``distance`` probes both endpoints' cached maps."""

    def test_reverse_pair_keeps_dijkstra_runs_flat(self, paper_network):
        comp = PairwiseDistanceComputer(paper_network, paper_network)
        a = NetworkPosition(0, 2.0)
        b = NetworkPosition(5, 1.0)
        d_ab = comp.distance(a, b)
        assert comp.dijkstra_runs == 1
        d_ba = comp.distance(b, a)
        # Distances are symmetric: b->a is answered from a's cached map
        # instead of running a second Dijkstra from b.
        assert comp.dijkstra_runs == 1
        assert d_ba == pytest.approx(d_ab)
        assert comp.cache.hits >= 1

    def test_symmetric_answer_matches_oracle(self, paper_network):
        comp = PairwiseDistanceComputer(paper_network, paper_network)
        a = NetworkPosition(1, 3.0)
        b = NetworkPosition(7, 2.0)
        comp.distance(a, b)
        assert comp.distance(b, a) == pytest.approx(
            network_distance(paper_network, paper_network, b, a)
        )


class TestCutoffKeying:
    def test_truncated_maps_never_answer_larger_cutoffs(self, line_network):
        cache = DistanceCache(max_entries=100_000)
        near = PairwiseDistanceComputer(
            line_network, line_network, cutoff=50, cache=cache
        )
        far = PairwiseDistanceComputer(line_network, line_network, cache=cache)
        a = NetworkPosition(0, 10.0)
        b = NetworkPosition(1, 10.0)
        # 90 to n1 plus 10 into edge 1 = 100, beyond the small cutoff.
        assert near.distance(a, b) == INF
        # The unbounded computer must not reuse near's truncated map
        # (cache keys embed the cutoff): it runs its own Dijkstra and
        # finds the true distance.
        assert far.distance(a, b) == pytest.approx(100.0)
        assert far.dijkstra_runs == 1


class TestSharedCache:
    def test_private_cache_is_unbounded(self, paper_network):
        comp = PairwiseDistanceComputer(paper_network, paper_network)
        assert comp.cache.max_entries is None

    def test_second_computer_rides_the_first_ones_maps(self, paper_network):
        cache = DistanceCache(max_entries=100_000)
        c1 = PairwiseDistanceComputer(paper_network, paper_network, cache=cache)
        c2 = PairwiseDistanceComputer(paper_network, paper_network, cache=cache)
        a = NetworkPosition(0, 2.0)
        b = NetworkPosition(5, 1.0)
        d1 = c1.distance(a, b)
        d2 = c2.distance(a, b)
        assert d1 == pytest.approx(d2)
        assert c1.dijkstra_runs == 1
        assert c2.dijkstra_runs == 0
        assert cache.hits == 1
