"""Distance-layer dynamics: self-loop seeding, backend counter fidelity,
cutoff clamping, and the epoch-gated shared cache under concurrency."""

import math
import threading
from types import SimpleNamespace

import pytest

from repro.datasets.synthetic import random_planar_network
from repro.errors import GraphError
from repro.network.distance import (
    DistanceCache,
    PairwiseDistanceComputer,
    seed_distances,
)
from repro.network.graph import NetworkPosition, RoadNetwork


class TestSelfLoopSeeding:
    def test_seed_distances_takes_min_on_self_loop(self):
        """On a loop edge both directions reach the same node; the seed
        must be the cheaper way around, not whichever dict write landed
        last."""
        loop_edge = SimpleNamespace(edge_id=0, n1=4, n2=4, weight=10.0)
        network = SimpleNamespace(edge=lambda eid: loop_edge)
        near = seed_distances(network, NetworkPosition(0, 2.0))
        assert near == {4: 2.0}
        far = seed_distances(network, NetworkPosition(0, 8.0))
        assert far == {4: 2.0}
        mid = seed_distances(network, NetworkPosition(0, 5.0))
        assert mid == {4: 5.0}

    def test_validate_rejects_injected_self_loop(self):
        network = RoadNetwork()
        network.add_node(0, 0.0, 0.0)
        network.add_node(1, 1.0, 0.0)
        network.add_edge(0, 1)
        network.validate()
        # add_edge and Edge both reject loops, so corrupt the store the
        # only way a loop can appear: direct injection.
        network._edges[99] = SimpleNamespace(edge_id=99, n1=0, n2=0, weight=1.0)
        with pytest.raises(GraphError, match="self-loop"):
            network.validate()

    def test_add_edge_rejects_self_loop(self):
        network = RoadNetwork()
        network.add_node(0, 0.0, 0.0)
        with pytest.raises(GraphError):
            network.add_edge(0, 0)


class _FakeBackend:
    """A DistanceBackend double returning a fixed answer."""

    name = "fake"

    def __init__(self, answer: float) -> None:
        self.answer = answer
        self.calls = 0

    def position_distance(self, a, b, cutoff=math.inf, counters=None):
        self.calls += 1
        return self.answer

    def position_matrix(self, positions, cutoff=math.inf, counters=None):
        n = len(positions)
        return {
            (i, j): self.answer for i in range(n) for j in range(i + 1, n)
        }


class TestBackendCounterFidelity:
    def _positions(self):
        network = random_planar_network(30, seed=2)
        edges = list(network.edges())
        a = NetworkPosition(edges[0].edge_id, 0.1 * edges[0].weight)
        b = NetworkPosition(edges[1].edge_id, 0.2 * edges[1].weight)
        return network, a, b

    def test_point_queries_without_prefetch_charge_no_miss(self):
        """A backend point query with no prefetched pair cache never
        probed a cache — charging a miss deflated the hit-rate SLO."""
        network, a, b = self._positions()
        computer = PairwiseDistanceComputer(
            network, network, cutoff=100.0, backend=_FakeBackend(1.0)
        )
        for _ in range(5):
            computer.distance(a, b)
        assert computer.cache_misses == 0
        assert computer.cache_hits == 0

    def test_prefetched_pairs_count_hits_and_misses(self):
        network, a, b = self._positions()
        backend = _FakeBackend(1.0)
        computer = PairwiseDistanceComputer(
            network, network, cutoff=100.0, backend=backend
        )
        assert computer.prefetch([a, b]) == 1
        computer.distance(a, b)
        assert computer.cache_hits == 1
        # A pair outside the prefetched set probes the (non-empty)
        # pair cache and charges a true miss.
        edges = list(network.edges())
        c = NetworkPosition(edges[2].edge_id, 0.3 * edges[2].weight)
        computer.distance(a, c)
        assert computer.cache_misses == 1

    def test_backend_distance_clamped_to_cutoff(self):
        """The backend path honours the same inf-beyond-cutoff contract
        as the Dijkstra path."""
        network, a, b = self._positions()
        computer = PairwiseDistanceComputer(
            network, network, cutoff=5.0, backend=_FakeBackend(7.5)
        )
        assert computer.distance(a, b) == math.inf
        within = PairwiseDistanceComputer(
            network, network, cutoff=5.0, backend=_FakeBackend(4.0)
        )
        assert within.distance(a, b) == pytest.approx(4.0)


class TestEpochGating:
    def test_stale_put_rejected_and_counted(self):
        cache = DistanceCache(max_entries=100)
        assert cache.invalidate(3)
        assert cache.put((0, 0.0, 1.0), {1: 1.0}, epoch=2) == 0
        assert len(cache) == 0
        assert cache.stats()["stale_puts"] == 1
        # A writer at or past the cache epoch lands normally.
        cache.put((0, 0.0, 1.0), {1: 1.0}, epoch=3)
        assert len(cache) == 1

    def test_old_epoch_reader_misses(self):
        cache = DistanceCache(max_entries=100)
        cache.put((0, 0.0, 1.0), {1: 1.0}, epoch=0)
        assert cache.get((0, 0.0, 1.0), epoch=0) is not None
        cache.invalidate(5)
        cache.put((0, 0.0, 1.0), {1: 2.0}, epoch=5)
        assert cache.get((0, 0.0, 1.0), epoch=4) is None
        found = cache.get((0, 0.0, 1.0), epoch=5)
        assert found is not None and found[1] == {1: 2.0}

    def test_invalidate_is_monotonic(self):
        cache = DistanceCache()
        assert cache.invalidate(2)
        assert not cache.invalidate(2)
        assert not cache.invalidate(1)
        assert cache.stats()["invalidations"] == 1
        assert cache.epoch == 2

    def test_concurrent_invalidation_never_serves_stale_maps(self):
        """Readers, writers and an invalidator race; no reader may ever
        observe a map written before the last invalidation it is ahead
        of.  Maps are tagged with their writer's epoch under sentinel
        key -1 so a stale serve is directly detectable."""
        cache = DistanceCache(max_entries=10_000)
        stop = threading.Event()
        errors = []
        #: Highest epoch whose invalidate() has *returned*; any reader
        #: pinned at or above it must never see an older-tagged map.
        completed = [0]

        def invalidator():
            for epoch in range(1, 60):
                cache.invalidate(epoch)
                completed[0] = epoch
            stop.set()

        def worker(worker_id):
            key = (worker_id, 0.0, 1.0)
            while not stop.is_set():
                epoch = cache.epoch
                cache.put(key, {-1: float(epoch)}, epoch=epoch)
                floor = completed[0]
                found = cache.get(key, epoch=floor)
                if found is not None and found[1][-1] < floor:
                    errors.append(
                        (worker_id, floor, found[1][-1])
                    )  # pragma: no cover — the failure being tested for

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        inv = threading.Thread(target=invalidator)
        for t in threads:
            t.start()
        inv.start()
        inv.join()
        for t in threads:
            t.join()
        assert errors == []
        stats = cache.stats()
        assert stats["invalidations"] == 59
        assert stats["epoch"] == 59


class TestEpochGatingEndToEnd:
    def test_execute_many_races_invalidations(self, tiny_db):
        """Queries on 4 workers race pure cache invalidations (the
        network itself is untouched, so every answer stays correct);
        counters stay consistent and no stale-epoch map survives."""
        from repro.engine.plan import plan_diversified
        from repro.workloads.queries import (
            WorkloadConfig,
            generate_diversified_queries,
        )

        db = tiny_db
        cache = db.use_shared_distance_cache(max_entries=100_000)
        index = db.build_index("sif", file_prefix="epoch-race-sif")
        try:
            queries = generate_diversified_queries(
                db,
                WorkloadConfig(
                    num_queries=24, num_keywords=2, k=4, seed=77
                ),
            )
            plans = [
                plan_diversified(db, index, q, method="seq") for q in queries
            ]

            stop = threading.Event()

            def invalidate_loop():
                epoch = db.data_version
                while not stop.is_set():
                    epoch += 1
                    cache.invalidate(epoch)

            inv = threading.Thread(target=invalidate_loop)
            inv.start()
            try:
                results = db.engine.execute_many(plans, workers=4)
            finally:
                stop.set()
                inv.join()
            assert len(results) == len(plans)
            stats = cache.stats()
            # Counter consistency: every lookup was a hit or a miss.
            assert stats["hits"] + stats["misses"] > 0
            assert stats["invalidations"] > 0
            # The serial re-run returns identical answers: invalidation
            # is a pure cache event, never a correctness event.
            serial = [db.engine.execute(p) for p in plans]
            for got, want in zip(results, serial):
                assert got.object_ids() == want.object_ids()
        finally:
            db.distance_cache = None
