"""Tests for the road-network graph model."""

import pytest

from repro.errors import GraphError
from repro.network.graph import NetworkPosition, RoadNetwork
from repro.spatial.geometry import Point


class TestConstruction:
    def test_add_nodes_and_edges(self, paper_network):
        assert paper_network.num_nodes == 7
        assert paper_network.num_edges == 8

    def test_duplicate_node_rejected(self):
        n = RoadNetwork()
        n.add_node(0, 0, 0)
        with pytest.raises(GraphError):
            n.add_node(0, 1, 1)

    def test_self_loop_rejected(self):
        n = RoadNetwork()
        n.add_node(0, 0, 0)
        with pytest.raises(GraphError):
            n.add_edge(0, 0)

    def test_unknown_node_rejected(self):
        n = RoadNetwork()
        n.add_node(0, 0, 0)
        with pytest.raises(GraphError):
            n.add_edge(0, 1)

    def test_duplicate_edge_rejected(self):
        n = RoadNetwork()
        n.add_node(0, 0, 0)
        n.add_node(1, 10, 0)
        n.add_edge(0, 1)
        with pytest.raises(GraphError):
            n.add_edge(1, 0)

    def test_zero_length_edge_rejected(self):
        n = RoadNetwork()
        n.add_node(0, 5, 5)
        n.add_node(1, 5, 5)
        with pytest.raises(GraphError):
            n.add_edge(0, 1)

    def test_default_weight_is_length(self):
        n = RoadNetwork()
        n.add_node(0, 0, 0)
        n.add_node(1, 30, 40)
        e = n.add_edge(0, 1)
        assert e.length == pytest.approx(50.0)
        assert e.weight == pytest.approx(50.0)

    def test_custom_weight_travel_time(self):
        n = RoadNetwork()
        n.add_node(0, 0, 0)
        n.add_node(1, 100, 0)
        e = n.add_edge(0, 1, weight=4.0)  # e.g. minutes, not metres
        assert e.length == pytest.approx(100.0)
        assert e.weight == 4.0

    def test_reference_node_has_smaller_id(self):
        n = RoadNetwork()
        n.add_node(3, 0, 0)
        n.add_node(1, 10, 0)
        e = n.add_edge(3, 1)
        assert e.n1 == 1 and e.n2 == 3


class TestAccessors:
    def test_unknown_lookup_raises(self, line_network):
        with pytest.raises(GraphError):
            line_network.node(99)
        with pytest.raises(GraphError):
            line_network.edge(99)
        with pytest.raises(GraphError):
            line_network.neighbors(99)

    def test_adjacency_symmetric(self, paper_network):
        for node in paper_network.nodes():
            for edge_id, other, weight in paper_network.neighbors(node.node_id):
                back = paper_network.neighbors(other)
                assert any(e == edge_id for e, _o, _w in back)

    def test_edge_between(self, line_network):
        e = line_network.edge_between(0, 1)
        assert e is not None and {e.n1, e.n2} == {0, 1}
        assert line_network.edge_between(1, 0).edge_id == e.edge_id
        assert line_network.edge_between(0, 3) is None

    def test_degree(self, grid_network9):
        # Centre node of a 3x3 grid has degree 4, corners degree 2.
        assert grid_network9.degree(4) == 4
        assert grid_network9.degree(0) == 2

    def test_validate_passes(self, paper_network):
        paper_network.validate()


class TestEdgeGeometry:
    def test_center_and_mbr(self):
        n = RoadNetwork()
        n.add_node(0, 0, 0)
        n.add_node(1, 10, 20)
        e = n.add_edge(0, 1)
        assert e.center == Point(5, 10)
        assert e.mbr.contains_point(Point(5, 10))

    def test_point_at_fraction(self):
        n = RoadNetwork()
        n.add_node(0, 0, 0)
        n.add_node(1, 100, 0)
        e = n.add_edge(0, 1)
        assert e.point_at_fraction(0.25) == Point(25, 0)

    def test_weight_offset_from_length(self):
        n = RoadNetwork()
        n.add_node(0, 0, 0)
        n.add_node(1, 100, 0)
        e = n.add_edge(0, 1, weight=10.0)
        # Paper footnote 1: proportional conversion.
        assert e.weight_offset_from_length(50.0) == pytest.approx(5.0)


class TestPositions:
    def test_negative_offset_rejected(self):
        with pytest.raises(GraphError):
            NetworkPosition(0, -1.0)

    def test_position_point(self, line_network):
        p = line_network.position_point(NetworkPosition(0, 50.0))
        assert p == Point(50, 0)

    def test_position_beyond_edge_rejected(self, line_network):
        with pytest.raises(GraphError):
            line_network.position_point(NetworkPosition(0, 1000.0))

    def test_node_position_roundtrip(self, paper_network):
        for node in paper_network.nodes():
            pos = paper_network.node_position(node.node_id)
            p = paper_network.position_point(pos)
            assert p.distance_to(node.point) < 1e-6
