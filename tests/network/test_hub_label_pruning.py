"""Property tests: path-cover-pruned hub labels ≡ raw CH search spaces.

Pruning drops label entries whose upward distance exceeds the true
distance — entries that can never win a join — so every query answer
(node pairs, position pairs, the batched matrix kernel) must be
**byte-identical** with and without pruning, while the labels only
shrink.  Both backends share one CH so the comparison isolates the
prune itself.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import random_planar_network
from repro.network.graph import NetworkPosition
from repro.network.hub_labels import HubLabelBackend

pytest.importorskip("numpy")


def build_pair(seed, nodes=40):
    network = random_planar_network(nodes, seed=seed)
    pruned = HubLabelBackend(network)
    raw = HubLabelBackend(network, ch=pruned.ch, prune_labels=False)
    return network, pruned, raw


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6))
def test_node_distances_byte_identical(seed):
    network, pruned, raw = build_pair(seed % 5)
    rng = np.random.default_rng(seed)
    nodes = [n.node_id for n in network.nodes()]
    for _ in range(40):
        a = nodes[int(rng.integers(0, len(nodes)))]
        b = nodes[int(rng.integers(0, len(nodes)))]
        assert pruned.node_distance(a, b) == raw.node_distance(a, b)


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 10**6))
def test_position_matrix_byte_identical(seed):
    network, pruned, raw = build_pair(seed % 4)
    rng = np.random.default_rng(seed + 1)
    edges = list(network.edges())
    positions = []
    for _ in range(12):
        edge = edges[int(rng.integers(0, len(edges)))]
        offset = float(rng.uniform(0, edge.weight))
        positions.append(NetworkPosition(edge.edge_id, offset))
    got = pruned.position_matrix_array(positions)
    want = raw.position_matrix_array(positions)
    assert np.array_equal(got, want)  # bit-for-bit, infs included
    cutoff = float(rng.uniform(500, 4000))
    got_c = pruned.position_matrix_array(positions, cutoff=cutoff)
    want_c = raw.position_matrix_array(positions, cutoff=cutoff)
    assert np.array_equal(got_c, want_c)


def test_pruning_only_shrinks_labels():
    _network, pruned, raw = build_pair(7, nodes=60)
    assert pruned.label_entries <= raw.label_entries
    assert pruned.pruned_entries == raw.label_entries - pruned.label_entries
    assert pruned.label_entries_unpruned == raw.label_entries
    assert raw.pruned_entries == 0
    # Every pruned label is a subset of its raw counterpart.
    for node in _network.nodes():
        ph, _pd = pruned._node_label(node.node_id)
        rh, _rd = raw._node_label(node.node_id)
        assert set(ph.tolist()) <= set(rh.tolist())
        # The self hub always survives (it is tight by definition).
        assert pruned.ch.rank[node.node_id] in set(ph.tolist())


def test_stats_report_pruning():
    _network, pruned, _raw = build_pair(11, nodes=50)
    stats = pruned.stats()
    assert stats["pruned_entries"] == pruned.pruned_entries
    assert stats["label_entries_unpruned"] == pruned.label_entries_unpruned
    assert (
        stats["label_entries"] + stats["pruned_entries"]
        == stats["label_entries_unpruned"]
    )
