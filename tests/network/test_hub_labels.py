"""Hub-label oracle tests.

Same acceptance bar as the CH suite it mirrors: hub-label answers are
*identical* to the bounded-Dijkstra backend and to the CH oracle the
labels were derived from — exact distances, the same-edge fiat rule,
the cutoff → inf contract — on every input, including randomly
generated connected road networks.  The batched label-join kernel must
agree with its own point queries cell for cell.
"""

import math
import random

import networkx as nx
import pytest

from repro.datasets.synthetic import grid_network, random_planar_network
from repro.errors import DependencyError
from repro.network.ch import ContractionHierarchy
from repro.network.distance import (
    BackendCounters,
    PairwiseDistanceComputer,
    network_distance,
)
from repro.network.graph import NetworkPosition
from repro.network.hub_labels import HubLabelBackend


def to_networkx(network):
    g = nx.Graph()
    for edge in network.edges():
        g.add_edge(edge.n1, edge.n2, weight=edge.weight)
    return g


def random_positions(network, rng, count):
    edges = list(network.edges())
    out = []
    for _ in range(count):
        edge = rng.choice(edges)
        out.append(NetworkPosition(edge.edge_id, rng.random() * edge.weight))
    return out


class TestConstruction:
    def test_labels_cover_every_node(self):
        network = random_planar_network(60, seed=3)
        hub = HubLabelBackend(network)
        assert hub.name == "hub"
        assert hub.num_labels == 60
        # Every node is in its own label (the upward search settles its
        # seed), so the average label size is at least 1.
        assert hub.avg_label_size >= 1.0
        assert hub.label_entries >= 60
        assert hub.max_label_size <= 60

    def test_reuses_supplied_ch(self):
        network = random_planar_network(40, seed=9)
        ch = ContractionHierarchy(network)
        hub = HubLabelBackend(network, ch=ch)
        assert hub.ch is ch

    def test_stats_dict(self):
        network = random_planar_network(40, seed=9)
        hub = HubLabelBackend(network)
        stats = hub.stats()
        assert stats["nodes"] == 40
        assert stats["labels"] == 40
        assert stats["label_entries"] == hub.label_entries
        assert stats["build_seconds"] >= 0.0
        assert stats["ch_shortcuts_added"] == hub.ch.shortcuts_added

    def test_missing_numpy_raises_dependency_error(self, monkeypatch):
        import repro.nplib as nplib

        monkeypatch.setattr(nplib, "np", None)
        with pytest.raises(DependencyError, match="numpy"):
            HubLabelBackend(random_planar_network(10, seed=1))


class TestNodeDistances:
    @pytest.mark.parametrize("seed", [0, 1, 2, 7, 19])
    def test_all_pairs_match_networkx_on_random_networks(self, seed):
        network = random_planar_network(50, seed=seed)
        hub = HubLabelBackend(network)
        g = to_networkx(network)
        expected = dict(nx.all_pairs_dijkstra_path_length(g))
        nodes = [n.node_id for n in network.nodes()]
        for a in nodes:
            for b in nodes:
                assert hub.node_distance(a, b) == pytest.approx(
                    expected[a][b]
                ), (seed, a, b)

    def test_all_pairs_on_a_grid(self):
        network = grid_network(5, 5, seed=2)
        hub = HubLabelBackend(network)
        g = to_networkx(network)
        expected = dict(nx.all_pairs_dijkstra_path_length(g))
        nodes = [n.node_id for n in network.nodes()]
        for a in nodes:
            for b in nodes:
                assert hub.node_distance(a, b) == pytest.approx(
                    expected[a][b]
                )

    def test_starved_witness_budget_stays_exact(self):
        # A CH built with an exhausted witness budget has redundant
        # shortcuts; the labels built on it are larger but still exact.
        network = random_planar_network(50, seed=13)
        generous = HubLabelBackend(network)
        stingy = HubLabelBackend(network, max_witness_settled=1)
        assert stingy.label_entries >= generous.label_entries
        nodes = [n.node_id for n in network.nodes()]
        rng = random.Random(13)
        for _ in range(300):
            a, b = rng.choice(nodes), rng.choice(nodes)
            assert stingy.node_distance(a, b) == pytest.approx(
                generous.node_distance(a, b)
            )

    def test_cutoff_contract(self):
        network = random_planar_network(50, seed=5)
        hub = HubLabelBackend(network)
        nodes = [n.node_id for n in network.nodes()]
        rng = random.Random(5)
        for _ in range(200):
            a, b = rng.choice(nodes), rng.choice(nodes)
            exact = hub.node_distance(a, b)
            cutoff = rng.random() * 2.0 * max(exact, 1e-9)
            bounded = hub.node_distance(a, b, cutoff=cutoff)
            if exact <= cutoff:
                assert bounded == pytest.approx(exact)
            else:
                assert bounded == math.inf


class TestPositionDistances:
    @pytest.mark.parametrize("seed", [0, 4, 11, 23])
    def test_sampled_positions_match_dijkstra_backend(self, seed):
        network = random_planar_network(80, seed=seed)
        hub = HubLabelBackend(network)
        rng = random.Random(seed)
        positions = random_positions(network, rng, 40)
        for a in positions:
            for b in positions:
                assert hub.position_distance(a, b) == pytest.approx(
                    network_distance(network, network, a, b)
                ), (seed, a, b)

    @pytest.mark.parametrize("seed", [2, 17])
    def test_equal_to_ch_backend(self, seed):
        network = random_planar_network(70, seed=seed)
        ch = ContractionHierarchy(network)
        hub = HubLabelBackend(network, ch=ch)
        rng = random.Random(seed)
        positions = random_positions(network, rng, 30)
        for a in positions:
            for b in positions:
                assert hub.position_distance(a, b) == pytest.approx(
                    ch.position_distance(a, b)
                ), (seed, a, b)

    def test_same_edge_short_circuit(self):
        network = random_planar_network(40, seed=8)
        edge = next(iter(network.edges()))
        hub = HubLabelBackend(network)
        a = NetworkPosition(edge.edge_id, 0.25 * edge.weight)
        b = NetworkPosition(edge.edge_id, 0.75 * edge.weight)
        # The paper's fiat rule: same edge → |offset difference|, even
        # when a shorter around-the-block path exists, and regardless of
        # any cutoff — exactly like the other backends.
        assert hub.position_distance(a, b) == pytest.approx(
            0.5 * edge.weight
        )
        assert hub.position_distance(a, b, cutoff=1e-12) == pytest.approx(
            0.5 * edge.weight
        )
        assert hub.position_distance(a, b) == pytest.approx(
            network_distance(network, network, a, b)
        )

    def test_cutoff_matches_dijkstra_backend(self):
        network = random_planar_network(60, seed=21)
        hub = HubLabelBackend(network)
        rng = random.Random(21)
        positions = random_positions(network, rng, 30)
        for _ in range(200):
            a, b = rng.choice(positions), rng.choice(positions)
            cutoff = rng.random() * 3.0
            got = hub.position_distance(a, b, cutoff=cutoff)
            want = network_distance(network, network, a, b, cutoff=cutoff)
            if want == math.inf:
                assert got == math.inf
            else:
                assert got == pytest.approx(want)

    def test_counters_charge_label_entries(self):
        network = random_planar_network(40, seed=6)
        hub = HubLabelBackend(network)
        edges = list(network.edges())
        a = NetworkPosition(edges[0].edge_id, 0.3 * edges[0].weight)
        b = NetworkPosition(edges[-1].edge_id, 0.3 * edges[-1].weight)
        counters = BackendCounters()
        hub.position_distance(a, b, counters=counters)
        assert counters.queries == 1
        # settled_nodes counts label entries scanned by the merge.
        assert counters.settled_nodes > 0


class TestLabelJoinKernel:
    def test_matrix_equals_point_queries(self):
        network = random_planar_network(70, seed=15)
        hub = HubLabelBackend(network)
        rng = random.Random(15)
        positions = random_positions(network, rng, 30)
        counters = BackendCounters()
        matrix = hub.position_matrix(positions, counters=counters)
        n = len(positions)
        assert set(matrix) == {
            (i, j) for i in range(n) for j in range(i + 1, n)
        }
        for (i, j), d in matrix.items():
            assert d == pytest.approx(
                hub.position_distance(positions[i], positions[j])
            )
        assert counters.queries == n
        assert counters.matrix_cells == n * (n - 1) // 2
        # bucket_hits carries the kernel-hit count (label entries that
        # joined through a shared hub).
        assert counters.bucket_hits > 0

    def test_matrix_equals_ch_matrix(self):
        network = random_planar_network(60, seed=25)
        ch = ContractionHierarchy(network)
        hub = HubLabelBackend(network, ch=ch)
        rng = random.Random(25)
        positions = random_positions(network, rng, 25)
        want = ch.position_matrix(positions)
        got = hub.position_matrix(positions)
        assert set(got) == set(want)
        for key, d in want.items():
            assert got[key] == pytest.approx(d), key

    def test_matrix_honours_cutoff(self):
        network = random_planar_network(70, seed=16)
        hub = HubLabelBackend(network)
        rng = random.Random(16)
        positions = random_positions(network, rng, 20)
        cutoff = 1.5
        matrix = hub.position_matrix(positions, cutoff=cutoff)
        for (i, j), d in matrix.items():
            want = hub.position_distance(
                positions[i], positions[j], cutoff=cutoff
            )
            if want == math.inf:
                assert d == math.inf
            else:
                assert d == pytest.approx(want)

    def test_matrix_same_edge_pairs(self):
        network = random_planar_network(40, seed=18)
        edge = next(iter(network.edges()))
        hub = HubLabelBackend(network)
        positions = [
            NetworkPosition(edge.edge_id, 0.1 * edge.weight),
            NetworkPosition(edge.edge_id, 0.9 * edge.weight),
        ]
        matrix = hub.position_matrix(positions)
        assert matrix[(0, 1)] == pytest.approx(0.8 * edge.weight)

    def test_trivial_inputs(self):
        network = random_planar_network(40, seed=19)
        hub = HubLabelBackend(network)
        assert hub.position_matrix([]) == {}
        rng = random.Random(19)
        (a,) = random_positions(network, rng, 1)
        assert hub.position_matrix([a]) == {}

    def test_kernel_chunking_is_value_neutral(self, monkeypatch):
        # Force the min-plus kernel down to single-hub chunks; the
        # chunked reduction must produce the same matrix.
        import repro.network.hub_labels as hl

        network = random_planar_network(50, seed=33)
        hub = HubLabelBackend(network)
        rng = random.Random(33)
        positions = random_positions(network, rng, 15)
        want = hub.position_matrix(positions)
        monkeypatch.setattr(hl, "_KERNEL_CELL_BUDGET", 1)
        got = hub.position_matrix(positions)
        assert got == want


class TestComputerIntegration:
    def test_backend_computer_matches_dijkstra_computer(self):
        network = random_planar_network(60, seed=29)
        hub = HubLabelBackend(network)
        rng = random.Random(29)
        positions = random_positions(network, rng, 20)
        plain = PairwiseDistanceComputer(network, network)
        backed = PairwiseDistanceComputer(network, network, backend=hub)
        assert backed.backend_name == "hub"
        want = plain.pairwise(positions)
        got = backed.pairwise(positions)
        assert set(got) == set(want)
        for key, d in want.items():
            if d == math.inf:
                assert got[key] == math.inf
            else:
                assert got[key] == pytest.approx(d)
        # One many-to-many prefetch served the matrix; the per-pair
        # loop then hits the computer's pair cache.
        assert backed.backend_counters.queries == len(positions)
        assert backed.dijkstra_runs == 0

    @pytest.mark.parametrize("seed", [7, 37])
    def test_bounded_computers_agree_on_inf_contract(self, seed):
        network = random_planar_network(60, seed=seed)
        hub = HubLabelBackend(network)
        rng = random.Random(seed)
        positions = random_positions(network, rng, 20)
        for cutoff in (0.5, 1.5, 4.0):
            plain = PairwiseDistanceComputer(network, network, cutoff=cutoff)
            backed = PairwiseDistanceComputer(
                network, network, cutoff=cutoff, backend=hub
            )
            for a in positions:
                for b in positions:
                    want = plain.distance(a, b)
                    got = backed.distance(a, b)
                    if want == math.inf:
                        assert got == math.inf, (seed, cutoff, a, b)
                    else:
                        assert got == pytest.approx(want), (
                            seed, cutoff, a, b,
                        )
