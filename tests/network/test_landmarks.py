"""Tests for the landmark (ALT) distance bounds."""

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.datasets.synthetic import random_planar_network
from repro.errors import GraphError
from repro.network.distance import network_distance
from repro.network.graph import NetworkPosition
from repro.network.landmarks import LandmarkIndex


@pytest.fixture(scope="module")
def world():
    network = random_planar_network(80, seed=17)
    landmarks = LandmarkIndex(network, network, num_landmarks=6)
    return network, landmarks


class TestConstruction:
    def test_validation(self, world):
        network, _ = world
        with pytest.raises(GraphError):
            LandmarkIndex(network, network, num_landmarks=0)

    def test_landmarks_distinct(self, world):
        _network, landmarks = world
        assert len(set(landmarks.landmarks)) == len(landmarks.landmarks)

    def test_landmarks_capped_by_nodes(self, line_network):
        landmarks = LandmarkIndex(line_network, line_network, num_landmarks=50)
        assert len(landmarks.landmarks) <= line_network.num_nodes

    def test_farthest_point_spreads(self, world):
        """The first two landmarks should be far apart."""
        network, landmarks = world
        a, b = landmarks.landmarks[:2]
        d = network_distance(
            network, network,
            network.node_position(a), network.node_position(b),
        )
        # Farther than the average edge weight by a wide margin.
        avg = sum(e.weight for e in network.edges()) / network.num_edges
        assert d > 3 * avg


class TestBounds:
    def _random_positions(self, network, rng, n=40):
        edges = list(network.edges())
        out = []
        for _ in range(n):
            e = edges[int(rng.integers(0, len(edges)))]
            out.append(NetworkPosition(e.edge_id, float(rng.uniform(0, e.weight))))
        return out

    def test_bounds_sandwich_exact_distance(self, world):
        network, landmarks = world
        rng = np.random.default_rng(3)
        positions = self._random_positions(network, rng)
        for a, b in zip(positions[::2], positions[1::2]):
            exact = network_distance(network, network, a, b)
            lb, ub = landmarks.bounds(a, b)
            assert lb <= exact + 1e-6
            assert ub >= exact - 1e-6

    def test_same_edge_bounds_are_exact(self, world):
        network, landmarks = world
        edge = next(network.edges())
        a = NetworkPosition(edge.edge_id, 0.25 * edge.weight)
        b = NetworkPosition(edge.edge_id, 0.75 * edge.weight)
        lb, ub = landmarks.bounds(a, b)
        assert lb == ub == pytest.approx(0.5 * edge.weight)

    def test_upper_bound_tighter_than_naive_triangle(self, world):
        """On average, landmark UBs beat the through-the-query triangle
        bound used by plain COM."""
        network, landmarks = world
        rng = np.random.default_rng(4)
        q = network.node_position(0)
        positions = self._random_positions(network, rng, n=30)
        wins = total = 0
        for a, b in zip(positions[::2], positions[1::2]):
            da = network_distance(network, network, q, a)
            db = network_distance(network, network, q, b)
            naive = da + db
            ub = landmarks.upper_bound(a, b)
            total += 1
            wins += ub < naive - 1e-9
        assert wins > total / 2

    def test_more_landmarks_never_loosen(self, world):
        network, _ = world
        few = LandmarkIndex(network, network, num_landmarks=2)
        many = LandmarkIndex(network, network, num_landmarks=8)
        rng = np.random.default_rng(5)
        positions = self._random_positions(network, rng, n=20)
        for a, b in zip(positions[::2], positions[1::2]):
            lb_few, ub_few = few.bounds(a, b)
            lb_many, ub_many = many.bounds(a, b)
            assert lb_many >= lb_few - 1e-9
            assert ub_many <= ub_few + 1e-9


class TestCOMIntegration:
    def test_landmarks_do_not_change_answers(self, tiny_db):
        from repro.network.landmarks import LandmarkIndex
        from repro.workloads.queries import WorkloadConfig, generate_diversified_queries

        index = tiny_db.build_index("sif", file_prefix="lm-sif")
        landmarks = LandmarkIndex(tiny_db.network, tiny_db.network,
                                  num_landmarks=6)
        queries = generate_diversified_queries(
            tiny_db,
            WorkloadConfig(num_queries=8, num_keywords=1, k=4,
                           delta_max=4000.0, seed=66),
        )
        for q in queries:
            plain = tiny_db.diversified_search(index, q, method="com")
            boosted = tiny_db.diversified_search(
                index, q, method="com", landmarks=landmarks
            )
            assert boosted.objective_value == pytest.approx(
                plain.objective_value, rel=1e-9
            )
            assert boosted.object_ids() == plain.object_ids()

    def test_landmarks_reduce_pairwise_dijkstras(self, tiny_db):
        from repro.network.landmarks import LandmarkIndex
        from repro.workloads.queries import WorkloadConfig, generate_diversified_queries

        index = tiny_db.build_index("sif", file_prefix="lm2-sif")
        landmarks = LandmarkIndex(tiny_db.network, tiny_db.network,
                                  num_landmarks=8)
        queries = generate_diversified_queries(
            tiny_db,
            WorkloadConfig(num_queries=10, num_keywords=1, k=4,
                           delta_max=4000.0, seed=67),
        )
        plain_runs = boosted_runs = 0
        for q in queries:
            plain = tiny_db.diversified_search(index, q, method="com")
            boosted = tiny_db.diversified_search(
                index, q, method="com", landmarks=landmarks
            )
            plain_runs += plain.stats.pairwise_dijkstras
            boosted_runs += boosted.stats.pairwise_dijkstras
        assert boosted_runs <= plain_runs
