"""Tests for the object store and edge snapping."""

import pytest

from repro.errors import DatasetError
from repro.network.graph import NetworkPosition
from repro.network.objects import ObjectStore, build_edge_rtree, snap_point_to_edge
from repro.spatial.geometry import Point
from repro.storage.pagefile import DiskManager


@pytest.fixture()
def store(line_network):
    return ObjectStore(line_network)


class TestStore:
    def test_add_and_get(self, store):
        obj = store.add(NetworkPosition(0, 10.0), {"pizza", "bar"})
        assert store.get(obj.object_id).keywords == frozenset({"pizza", "bar"})
        assert len(store) == 1

    def test_empty_keywords_rejected(self, store):
        with pytest.raises(DatasetError):
            store.add(NetworkPosition(0, 10.0), [])

    def test_offset_beyond_edge_rejected(self, store):
        with pytest.raises(DatasetError):
            store.add(NetworkPosition(0, 500.0), {"a"})

    def test_unknown_object(self, store):
        with pytest.raises(DatasetError):
            store.get(42)

    def test_objects_on_edge_sorted_by_offset(self, store):
        store.add(NetworkPosition(0, 80.0), {"c"})
        store.add(NetworkPosition(0, 10.0), {"a"})
        store.add(NetworkPosition(0, 40.0), {"b"})
        store.freeze()
        offsets = [o.position.offset for o in store.objects_on_edge(0)]
        assert offsets == [10.0, 40.0, 80.0]

    def test_objects_on_empty_edge(self, store):
        assert store.objects_on_edge(3) == []

    def test_contains_all_and_any(self, store):
        obj = store.add(NetworkPosition(0, 1.0), {"a", "b"})
        assert obj.contains_all({"a"})
        assert obj.contains_all({"a", "b"})
        assert not obj.contains_all({"a", "c"})
        assert obj.contains_any({"c", "b"})
        assert not obj.contains_any({"x"})

    def test_vocabulary_and_frequencies(self, store):
        store.add(NetworkPosition(0, 1.0), {"a", "b"})
        store.add(NetworkPosition(1, 1.0), {"a"})
        assert store.vocabulary() == frozenset({"a", "b"})
        assert store.keyword_frequencies() == {"a": 2, "b": 1}
        assert store.average_keywords_per_object() == pytest.approx(1.5)

    def test_object_point(self, store):
        obj = store.add(NetworkPosition(0, 25.0), {"a"})
        assert store.object_point(obj.object_id) == Point(25, 0)


class TestSnapping:
    def test_snap_onto_closest_edge(self, grid_network9):
        disk = DiskManager(buffer_pages=16)
        rtree = build_edge_rtree(grid_network9, disk.create_file("rt", "rtree"))
        # Slightly off the bottom edge between nodes 0 (0,0) and 1 (100,0).
        pos = snap_point_to_edge(grid_network9, rtree, Point(40.0, 7.0))
        edge = grid_network9.edge(pos.edge_id)
        assert {edge.n1, edge.n2} == {0, 1}
        assert pos.offset == pytest.approx(40.0)

    def test_snap_point_on_node(self, grid_network9):
        disk = DiskManager(buffer_pages=16)
        rtree = build_edge_rtree(grid_network9, disk.create_file("rt", "rtree"))
        pos = snap_point_to_edge(grid_network9, rtree, Point(100.0, 100.0))
        p = grid_network9.position_point(pos)
        assert p.distance_to(Point(100, 100)) < 1e-6

    def test_snap_distances_are_minimal(self, grid_network9):
        import numpy as np
        from repro.spatial.geometry import point_segment_distance

        disk = DiskManager(buffer_pages=16)
        rtree = build_edge_rtree(grid_network9, disk.create_file("rt", "rtree"))
        rng = np.random.default_rng(1)
        for _ in range(50):
            p = Point(float(rng.uniform(0, 200)), float(rng.uniform(0, 200)))
            pos = snap_point_to_edge(grid_network9, rtree, p)
            snapped = grid_network9.position_point(pos)
            best = min(
                point_segment_distance(p, e.p1, e.p2)
                for e in grid_network9.edges()
            )
            assert p.distance_to(snapped) == pytest.approx(best, abs=1e-6)
