"""Tests for EXPLAIN reports (repro.obs.explain) and Database.explain.

The two workload-level assertions here are the observable versions of
the paper's §3/§4 pruning claims: partitioned signatures (SIF-P) send
fewer candidate objects into verification than one signature per edge
(SIF), and a relevance-heavy diversified query (λ=1) lets the §4.3
bound terminate the network expansion early.
"""

import pytest

from repro.obs.explain import ExplainReport
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.workloads.queries import (
    WorkloadConfig,
    generate_diversified_queries,
    generate_sk_queries,
)


@pytest.fixture()
def sk_workload(tiny_db):
    config = WorkloadConfig(num_queries=40, num_keywords=2, seed=7)
    return generate_sk_queries(tiny_db, config)


class TestExplainReport:
    def test_requires_a_trace(self):
        with pytest.raises(ValueError):
            ExplainReport(None)

    def test_render_minimal_tree(self):
        tracer = Tracer()
        with tracer.span("query.sk", index="SIF", terms=["t1"],
                         delta_max=500.0) as root:
            tracer.add_span(
                "ine.round", 0.001, round=0, frontier=4, watermark=120.0,
                watermark_fraction=0.24, nodes_settled=8, objects_emitted=2,
            )
            tracer.add_span(
                "signature.filter", 0.0005, partition="SIF",
                edges_pruned=12, edges_probed=4, candidates_tested=9,
                false_positives=2, results=7,
            )
            root.set(results=7)
        text = ExplainReport(tracer.last_trace).render()
        assert "EXPLAIN" in text
        assert "INE round #0" in text
        assert "frontier 4" in text
        assert "signature filter [SIF]: dropped 12/16 (75%)" in text
        assert "9 candidate objects verified" in text
        assert "2/9 (22%) false positives" in text

    def test_sibling_runs_are_collapsed(self):
        tracer = Tracer()
        with tracer.span("query.diversified", method="COM"):
            for i in range(40):
                tracer.add_span("com.round", 0.0, candidate=i,
                                action="cp_not_full", theta_t=0.0, gamma=1.0)
        text = ExplainReport(tracer.last_trace).render()
        assert "more com.round spans" in text
        # Far fewer rendered lines than spans.
        assert text.count("COM round") < 10

    def test_event_summaries(self):
        tracer = Tracer()
        with tracer.span("query.sk"):
            for edge in range(5):
                tracer.event("signature.prune", edge=edge)
            tracer.event("pairwise.cache_hit")
        text = ExplainReport(tracer.last_trace).render()
        assert "5 × edges pruned by signature" in text
        assert "1 × pairwise distances answered from cache" in text


class TestDatabaseExplain:
    def test_sk_explain_has_pruning_nodes(self, tiny_db, tiny_indexes,
                                          sk_workload):
        report = tiny_db.explain(tiny_indexes["sif"], sk_workload[0])
        assert report.trace.name == "query.sk"
        assert report.spans("ine.round"), "expected INE round spans"
        stats = report.signature_stats()
        assert stats["partition"] == "SIF"
        assert stats["edges_pruned"] + stats["edges_probed"] > 0
        text = report.render()
        assert "INE round" in text
        assert "signature filter" in text

    def test_explain_restores_the_installed_tracer(self, tiny_db,
                                                   tiny_indexes,
                                                   sk_workload):
        assert tiny_db.tracer is NULL_TRACER
        tiny_db.explain(tiny_indexes["sif"], sk_workload[0])
        assert tiny_db.tracer is NULL_TRACER
        assert tiny_indexes["sif"].tracer is NULL_TRACER

    def test_diversified_explain_has_com_nodes(self, tiny_db, tiny_indexes):
        config = WorkloadConfig(
            num_queries=1, num_keywords=1, k=4, delta_max=4000.0, seed=11
        )
        query = generate_diversified_queries(tiny_db, config)[0]
        report = tiny_db.explain(tiny_indexes["sif"], query, method="com")
        assert report.trace.name == "query.diversified"
        assert report.span("com.maintenance") is not None
        assert report.spans("com.round")
        assert "COM" in report.render()

    def test_result_is_returned(self, tiny_db, tiny_indexes, sk_workload):
        report = tiny_db.explain(tiny_indexes["sif"], sk_workload[0])
        assert report.result is not None
        assert report.trace.attrs["results"] == len(report.result)


class TestPruningClaims:
    def test_sif_p_verifies_fewer_candidates_than_sif(
        self, tiny_db, tiny_indexes, sk_workload
    ):
        """§3.3: edge partitioning cuts signature false positives, so
        SIF-P's EXPLAIN shows fewer verification candidates than SIF
        over the same workload."""
        totals = {}
        for kind in ("sif", "sif-p"):
            index = tiny_indexes[kind]
            total = 0
            for query in sk_workload:
                stats = tiny_db.explain(index, query).signature_stats()
                assert stats["partition"] == index.name
                total += stats["candidates_tested"]
            totals[kind] = total
        assert totals["sif-p"] < totals["sif"]

    def test_lambda_one_records_early_termination(self, tiny_db,
                                                  tiny_indexes):
        """§4.3: with λ=1 the unvisited-pair bound decays as the
        frontier grows, so expansions terminate before exhausting
        δmax — and the trace says so."""
        config = WorkloadConfig(
            num_queries=10, num_keywords=1, k=4, lambda_=1.0,
            delta_max=4000.0, seed=11,
        )
        queries = generate_diversified_queries(tiny_db, config)
        early = [
            report
            for report in (
                tiny_db.explain(tiny_indexes["sif"], q, method="com")
                for q in queries
            )
            if report.terminated_early
        ]
        assert early, "no query terminated early under lambda=1"
        report = early[0]
        # The root span, the COM summary and the termination event all
        # agree; the rendered report narrates the decision.
        assert report.trace.attrs["terminated_early"] is True
        assert report.trace.event_count("com.early_termination") == 1
        maintenance = report.span("com.maintenance")
        assert maintenance.attrs["terminated_early"] is True
        rounds = report.spans("com.round")
        assert rounds[-1].attrs["action"] == "terminate"
        assert "TERMINATE expansion" in report.render()

    def test_no_pruning_ablation_never_terminates(self, tiny_db,
                                                  tiny_indexes):
        config = WorkloadConfig(
            num_queries=3, num_keywords=1, k=4, lambda_=1.0,
            delta_max=4000.0, seed=11,
        )
        for query in generate_diversified_queries(tiny_db, config):
            report = tiny_db.explain(
                tiny_indexes["sif"], query, method="com",
                enable_pruning=False,
            )
            assert not report.terminated_early
