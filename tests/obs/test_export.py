"""Tests for the Chrome-trace and Prometheus exporters (repro.obs.export)."""

import json

from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    write_chrome_trace,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def make_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("query.sk", index="SIF", terms=("b", "a")) as root:
        tracer.add_span("ine.round", 0.002, round=0, frontier=3)
        tracer.event("signature.prune", edge=7)
        root.set(results=2)
    with tracer.span("query.diversified", method="COM"):
        tracer.add_span("pairwise.dijkstra", 0.001, source_edge=4)
    return tracer


class TestChromeTrace:
    def test_document_shape(self):
        doc = chrome_trace(make_tracer())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events, "traceEvents must be non-empty"
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i"}

    def test_complete_events_carry_microsecond_times(self):
        events = chrome_trace(make_tracer())["traceEvents"]
        ine = next(e for e in events if e["name"] == "ine.round")
        assert ine["ph"] == "X"
        assert ine["dur"] == 2000.0  # 0.002 s in µs
        assert ine["args"] == {"round": 0, "frontier": 3}

    def test_each_trace_gets_its_own_track(self):
        events = chrome_trace(make_tracer())["traceEvents"]
        tids = {e["tid"] for e in events if e["ph"] == "X"}
        assert len(tids) == 2
        names = [e for e in events if e["name"] == "thread_name"]
        assert len(names) == 2
        assert "query.sk [SIF]" in names[0]["args"]["name"]

    def test_instant_events(self):
        events = chrome_trace(make_tracer())["traceEvents"]
        prune = next(e for e in events if e["name"] == "signature.prune")
        assert prune["ph"] == "i"
        assert prune["args"] == {"edge": 7}

    def test_args_are_json_safe(self):
        doc = chrome_trace(make_tracer())
        text = json.dumps(doc)  # tuples/frozensets must not leak through
        sk = next(
            e for e in doc["traceEvents"] if e["name"] == "query.sk"
        )
        assert sk["args"]["terms"] == ["b", "a"]
        assert "traceEvents" in text

    def test_write_round_trips(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", make_tracer())
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]

    def test_accepts_explicit_span_list(self):
        tracer = make_tracer()
        doc = chrome_trace([tracer.traces[0]])
        assert {e["tid"] for e in doc["traceEvents"]} == {1}


class TestPrometheus:
    def make_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.inc("query.count", 6)
        registry.inc("distance_cache.hits", 14)
        for value in (0.1, 0.2, 0.3, 0.4):
            registry.observe("stage.expansion.seconds", value)
        registry.histogram("stage.empty.seconds")  # never observed
        return registry

    def test_counters_and_summaries(self):
        text = prometheus_text(self.make_registry())
        assert "# TYPE repro_query_count counter" in text
        assert "repro_query_count 6" in text
        assert "# TYPE repro_stage_expansion_seconds summary" in text
        assert 'repro_stage_expansion_seconds{quantile="0.5"}' in text
        assert "repro_stage_expansion_seconds_sum 1.0" in text
        assert "repro_stage_expansion_seconds_count 4" in text

    def test_names_are_sanitised(self):
        text = prometheus_text(self.make_registry())
        assert "query.count" not in text
        assert "distance_cache.hits" not in text
        assert "repro_distance_cache_hits 14" in text

    def test_empty_histograms_are_skipped(self):
        text = prometheus_text(self.make_registry())
        assert "stage_empty" not in text
        assert "NaN" not in text

    def test_prefix_override(self):
        text = prometheus_text(self.make_registry(), prefix="x")
        assert "x_query_count 6" in text

    def test_write(self, tmp_path):
        path = write_prometheus(tmp_path / "metrics.prom",
                                self.make_registry())
        content = path.read_text()
        assert content.endswith("\n")
        assert "repro_query_count 6" in content
