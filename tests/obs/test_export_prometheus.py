"""Prometheus exposition correctness: names, labels, HELP/TYPE, gauges."""

from __future__ import annotations

import math
import re
import threading

from repro.obs.export import (
    VALID_LABEL_NAME,
    VALID_METRIC_NAME,
    database_gauges,
    escape_label_value,
    prometheus_text,
)
from repro.obs.metrics import MetricsRegistry


def sample_lines(text: str):
    return [ln for ln in text.splitlines() if ln and not ln.startswith("#")]


class TestEscaping:
    def test_escape_label_value(self):
        assert escape_label_value("SIF/COM") == "SIF/COM"
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_plan_label_with_slash_round_trips(self):
        registry = MetricsRegistry()
        registry.inc("query.plan#SIF/COM", 3)
        registry.inc('query.plan#weird"label\nx', 1)
        text = prometheus_text(registry)
        assert 'repro_query_plan{plan="SIF/COM"} 3' in text
        assert 'repro_query_plan{plan="weird\\"label\\nx"} 1' in text

    def test_all_names_valid(self):
        registry = MetricsRegistry()
        registry.inc("query.plan#SIF/COM")
        registry.inc("weird metric name!!")
        registry.inc("slo.breach#p95-rule")
        registry.observe("stage.greedy.seconds", 0.01)
        text = prometheus_text(
            registry, gauges={"bad gauge/name": 1.0, "ok_gauge": 2.0}
        )
        for line in sample_lines(text):
            name = re.split(r"[{ ]", line, maxsplit=1)[0]
            assert VALID_METRIC_NAME.match(name), line
            for label in re.findall(r'(\w+)=(?=")', line):
                assert VALID_LABEL_NAME.match(label), line


class TestFamilies:
    def test_help_and_type_once_per_family(self):
        registry = MetricsRegistry()
        registry.inc("query.plan#A")
        registry.inc("query.plan#B")
        registry.inc("query.plan#C")
        text = prometheus_text(registry)
        assert text.count("# TYPE repro_query_plan counter") == 1
        assert text.count("# HELP repro_query_plan") == 1
        # All three labelled samples share the single family.
        assert len(re.findall(r"^repro_query_plan\{", text, re.M)) == 3

    def test_colliding_raw_names_share_one_family(self):
        registry = MetricsRegistry()
        registry.inc("query.a-b", 1)
        registry.inc("query.a/b", 2)  # sanitizes to the same family
        text = prometheus_text(registry)
        assert text.count("# TYPE repro_query_a_b counter") == 1
        values = sorted(
            int(m)
            for m in re.findall(r"^repro_query_a_b (\d+)$", text, re.M)
        )
        assert values == [1, 2]

    def test_every_counter_round_trips(self):
        registry = MetricsRegistry()
        expected = {}
        for i, name in enumerate(
            ("query.count", "buffer.hits", "cache.miss", "x.y.z")
        ):
            registry.inc(name, i + 1)
            expected["repro_" + name.replace(".", "_")] = i + 1
        text = prometheus_text(registry)
        parsed = {}
        for line in sample_lines(text):
            name, value = line.rsplit(" ", 1)
            if "{" not in name:
                parsed[name] = float(value)
        for name, value in expected.items():
            assert parsed[name] == value

    def test_histogram_summary_shape(self):
        registry = MetricsRegistry()
        for i in range(100):
            registry.observe("query.wall_seconds", i / 1000.0)
        text = prometheus_text(registry)
        assert "# TYPE repro_query_wall_seconds summary" in text
        assert re.search(
            r'repro_query_wall_seconds\{quantile="0.5"\} [\d.]+', text
        )
        assert "repro_query_wall_seconds_count 100" in text
        assert "repro_query_wall_seconds_sum" in text
        assert "NaN" not in text

    def test_gauges_match_snapshot(self):
        registry = MetricsRegistry()
        gauges = {"buffer_pool_size": 128.0, "distance_cache_entries": 42.0}
        text = prometheus_text(registry, gauges=gauges)
        for name, value in gauges.items():
            match = re.search(rf"^repro_{name} ([\d.]+)$", text, re.M)
            assert match, name
            assert float(match.group(1)) == value
        assert text.count("# TYPE repro_buffer_pool_size gauge") == 1

    def test_non_finite_gauges_skipped(self):
        registry = MetricsRegistry()
        text = prometheus_text(
            registry, gauges={"bad": math.nan, "worse": math.inf, "ok": 1.0}
        )
        assert "repro_ok 1.0" in text
        assert "repro_bad" not in text
        assert "repro_worse" not in text


class TestConcurrentScrape:
    def test_scrape_during_recording(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def writer():
            i = 0
            while not stop.is_set():
                registry.observe("query.wall_seconds", (i % 100) / 1e4)
                registry.inc("query.count")
                registry.inc(f"query.plan#P{i % 3}")
                i += 1

        def scraper():
            try:
                for _ in range(50):
                    text = prometheus_text(registry)
                    assert "repro_query_count" in text
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        writers = [threading.Thread(target=writer) for _ in range(3)]
        scrape = threading.Thread(target=scraper)
        for t in writers:
            t.start()
        scrape.start()
        scrape.join()
        stop.set()
        for t in writers:
            t.join()
        assert not errors

    def test_database_gauges_export(self, tiny_db):
        text = prometheus_text(
            tiny_db.metrics, gauges=database_gauges(tiny_db)
        )
        for line in sample_lines(text):
            name = re.split(r"[{ ]", line, maxsplit=1)[0]
            assert VALID_METRIC_NAME.match(name), line
