"""Tests for the observability primitives (repro.obs.metrics)."""

import math
import time

import pytest

from repro.obs.metrics import Counter, Histogram, MetricsRegistry, StageClock


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5


class TestHistogram:
    def test_empty(self):
        h = Histogram("lat")
        assert h.count == 0
        # NaN, not 0.0: an empty histogram must not read as "observed
        # zero latency" in a report.
        assert math.isnan(h.percentile(50))
        assert math.isnan(h.mean)
        assert h.summary() == {"count": 0}

    def test_single_sample(self):
        h = Histogram("lat")
        h.observe(3.0)
        for p in (0, 50, 99, 100):
            assert h.percentile(p) == 3.0

    def test_percentiles_uniform(self):
        h = Histogram("lat")
        for i in range(1, 101):
            h.observe(float(i))
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(95) == pytest.approx(95.05)
        assert h.percentile(99) == pytest.approx(99.01)

    def test_summary_fields(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["sum"] == pytest.approx(6.0)
        assert s["mean"] == pytest.approx(2.0)
        assert s["min"] == 1.0
        assert s["max"] == 3.0

    def test_observe_order_does_not_matter(self):
        a, b = Histogram("a"), Histogram("b")
        values = [5.0, 1.0, 4.0, 2.0, 3.0]
        for v in values:
            a.observe(v)
        for v in sorted(values):
            b.observe(v)
        assert a.percentile(50) == b.percentile(50) == 3.0

    def test_subsampling_bounds_memory(self):
        h = Histogram("lat", max_samples=64)
        for i in range(10_000):
            h.observe(float(i))
        assert h.count == 10_000          # exact
        assert h.max == 9999.0            # exact
        assert len(h._samples) <= 64 + 1  # bounded
        # Percentiles stay approximately right after subsampling.
        assert h.percentile(50) == pytest.approx(5000, rel=0.25)


class TestStageClock:
    def test_accumulates(self):
        clock = StageClock()
        clock.add("a", 0.5)
        clock.add("a", 0.25)
        clock.add("b", 1.0)
        assert clock.stages == {"a": 0.75, "b": 1.0}

    def test_context_manager_measures(self):
        clock = StageClock()
        with clock.stage("sleep"):
            time.sleep(0.01)
        assert clock.stages["sleep"] >= 0.009

    def test_timed_iter_charges_production_time(self):
        clock = StageClock()

        def slow_gen():
            for i in range(3):
                time.sleep(0.005)
                yield i

        items = list(clock.timed_iter(slow_gen(), "gen"))
        assert items == [0, 1, 2]
        assert clock.stages["gen"] >= 0.014

    def test_timed_iter_close_closes_inner(self):
        closed = []

        def gen():
            try:
                for i in range(100):
                    yield i
            finally:
                closed.append(True)

        clock = StageClock()
        stream = clock.timed_iter(gen(), "gen")
        assert next(stream) == 0
        stream.close()
        assert closed == [True]


class TestMetricsRegistry:
    def test_counter_and_histogram_identity(self):
        m = MetricsRegistry()
        assert m.counter("x") is m.counter("x")
        assert m.histogram("h") is m.histogram("h")

    def test_inc_and_observe(self):
        m = MetricsRegistry()
        m.inc("queries", 2)
        m.observe("lat", 1.5)
        m.observe("lat", 2.5)
        assert m.counters() == {"queries": 2}
        assert m.histogram("lat").mean == pytest.approx(2.0)

    def test_observe_stages(self):
        m = MetricsRegistry()
        m.observe_stages({"expansion": 0.1, "greedy": 0.2})
        assert m.histogram("stage.expansion.seconds").count == 1
        assert m.histogram("stage.greedy.seconds").count == 1

    def test_snapshot_is_jsonable(self):
        import json

        m = MetricsRegistry()
        m.inc("a")
        m.observe("b", 1.0)
        json.dumps(m.snapshot())

    def test_percentiles_helper(self):
        m = MetricsRegistry()
        assert m.percentiles("missing") is None
        for i in range(10):
            m.observe("lat", float(i))
        ps = m.percentiles("lat")
        assert set(ps) == {50, 95, 99}

    def test_emit_fans_out_to_sinks(self):
        from repro.obs.sinks import InMemorySink

        m = MetricsRegistry()
        s1, s2 = InMemorySink(), InMemorySink()
        m.add_sink(s1)
        m.add_sink(s2)
        m.emit({"type": "query", "n": 1})
        assert s1.records == s2.records == [{"type": "query", "n": 1}]
        m.remove_sink(s2)
        m.emit({"type": "query", "n": 2})
        assert len(s1.records) == 2
        assert len(s2.records) == 1

    def test_snapshot_omits_empty_histograms(self):
        m = MetricsRegistry()
        m.observe("real", 1.0)
        m.histogram("empty")  # created but never observed
        snap = m.snapshot()
        assert "real" in snap["histograms"]
        assert "empty" not in snap["histograms"]

    def test_close_closes_every_sink_despite_errors(self):
        class FailingSink:
            closed = False

            def emit(self, record):
                pass

            def close(self):
                self.closed = True
                raise OSError("disk gone")

        class GoodSink:
            closed = False

            def emit(self, record):
                pass

            def close(self):
                self.closed = True

        m = MetricsRegistry()
        failing, good = FailingSink(), GoodSink()
        m.add_sink(failing)
        m.add_sink(good)
        with pytest.raises(OSError):
            m.close()
        assert failing.closed and good.closed

    def test_context_manager_closes_on_error(self, tmp_path):
        from repro.obs.sinks import JsonLinesSink

        sink = JsonLinesSink(tmp_path / "out.jsonl")
        with pytest.raises(RuntimeError):
            with MetricsRegistry() as m:
                m.add_sink(sink)
                m.emit({"n": 1})
                raise RuntimeError("query blew up")
        assert sink.closed
        # The record written before the failure survived on disk.
        lines = (tmp_path / "out.jsonl").read_text().strip().splitlines()
        assert len(lines) == 1
