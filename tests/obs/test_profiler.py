"""Sampling-profiler tests: folded stacks, labels, bounds, rendering."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.profiler import (
    SamplingProfiler,
    current_plan_labels,
    executing_plan,
    parse_folded,
    render_profile,
)


def spin(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(range(500))


class TestSamplingProfiler:
    def test_samples_a_busy_function(self):
        profiler = SamplingProfiler(hz=250.0)
        profiler.start()
        try:
            spin(0.4)
        finally:
            profiler.stop()
        folded = profiler.folded()
        assert folded, "no stacks sampled"
        assert profiler.stats()["samples"] > 10
        text = profiler.folded_text()
        # This very test frame must appear somewhere in the stacks.
        assert "test_profiler.py:spin" in text

    def test_plan_label_attribution(self):
        profiler = SamplingProfiler(hz=250.0)
        profiler.start()
        try:
            with executing_plan("SIF/COM [dijkstra]"):
                spin(0.4)
        finally:
            profiler.stop()
        labelled = [
            stack for stack in profiler.folded()
            if stack.startswith("SIF/COM [dijkstra];")
        ]
        assert labelled, "no stacks attributed to the plan label"

    def test_label_scope_clears(self):
        ident = threading.get_ident()
        with executing_plan("X/Y"):
            assert current_plan_labels()[ident] == "X/Y"
        assert ident not in current_plan_labels()

    def test_label_scope_clears_on_exception(self):
        ident = threading.get_ident()
        with pytest.raises(RuntimeError):
            with executing_plan("X/Y"):
                raise RuntimeError("boom")
        assert ident not in current_plan_labels()

    def test_only_labelled_mode(self):
        profiler = SamplingProfiler(hz=250.0, only_labelled=True)
        profiler.start()
        try:
            spin(0.2)  # unlabelled: must not be recorded
            with executing_plan("L"):
                spin(0.2)
        finally:
            profiler.stop()
        stacks = profiler.folded()
        assert stacks
        assert all(s.startswith("L;") for s in stacks)

    def test_bounded_stacks(self):
        profiler = SamplingProfiler(hz=100.0, max_stacks=2)
        # Synthesize distinct stacks directly (deterministic).
        for i in range(10):
            profiler._record(f"stack;{i}")
        folded = profiler.folded()
        assert len(folded) <= 3  # 2 + the <overflow> bucket
        assert folded.get("<overflow>") == 8
        assert profiler.stats()["overflowed"] == 8

    def test_start_stop_idempotent(self):
        profiler = SamplingProfiler(hz=100.0)
        profiler.start()
        profiler.start()
        profiler.stop()
        profiler.stop()
        assert not profiler.running

    def test_write_folded(self, tmp_path):
        profiler = SamplingProfiler(hz=250.0)
        profiler.start()
        spin(0.2)
        profiler.stop()
        out = tmp_path / "profile.folded"
        profiler.write_folded(out)
        lines = out.read_text().splitlines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert stack
            assert int(count) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_stacks=0)


class TestFoldedRoundTrip:
    def test_parse_folded(self):
        table = parse_folded([
            "a;b;c 10",
            "a;b 5",
            "",
            "malformed-line-without-count",
            "x;y notanumber",
            "d 1",
        ])
        assert table == {"a;b;c": 10, "a;b": 5, "d": 1}

    def test_render_profile_sections(self):
        table = {
            "SEQ;main;search 60",
            }
        table = {
            "SEQ;main.py:run;search.py:greedy": 60,
            "COM;main.py:run;search.py:prune": 30,
            "COM;main.py:run;io.py:read": 10,
        }
        out = render_profile(table, top=5)
        assert "by plan label:" in out
        assert "by leaf frame:" in out
        assert "hottest stacks:" in out
        assert "SEQ" in out and "COM" in out
        # 100 samples total; SEQ owns 60%.
        assert "60.0%" in out

    def test_profiler_output_round_trips(self):
        profiler = SamplingProfiler(hz=250.0)
        profiler.start()
        with executing_plan("PLAN"):
            spin(0.3)
        profiler.stop()
        table = parse_folded(profiler.folded_text().splitlines())
        assert table == profiler.folded()
        assert "PLAN" in render_profile(table)
