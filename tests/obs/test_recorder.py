"""Flight recorder tests: digests, the ring, persistence, concurrency."""

from __future__ import annotations

import json
import threading
import urllib.request
from dataclasses import dataclass
from typing import List, Optional

import pytest

from repro.engine.plan import plan_diversified
from repro.obs.recorder import FlightRecorder, result_digest
from repro.workloads.queries import (
    WorkloadConfig,
    generate_diversified_queries,
)


# -- digest unit tests (duck-typed fakes; no database needed) ----------
@dataclass
class FakeObject:
    object_id: int


@dataclass
class FakeItem:
    object: FakeObject
    distance: float


@dataclass
class FakeResult:
    items: List[FakeItem]
    objective_value: Optional[float] = None


def fake_result(pairs, objective=None) -> FakeResult:
    return FakeResult(
        items=[FakeItem(FakeObject(oid), dist) for oid, dist in pairs],
        objective_value=objective,
    )


class TestResultDigest:
    def test_deterministic(self):
        a = fake_result([(1, 10.0), (2, 20.5)], objective=3.25)
        b = fake_result([(1, 10.0), (2, 20.5)], objective=3.25)
        assert result_digest(a) == result_digest(b)
        assert len(result_digest(a)) == 16

    def test_order_sensitive(self):
        a = fake_result([(1, 10.0), (2, 20.5)])
        b = fake_result([(2, 20.5), (1, 10.0)])
        assert result_digest(a) != result_digest(b)

    def test_membership_sensitive(self):
        a = fake_result([(1, 10.0), (2, 20.5)])
        b = fake_result([(1, 10.0), (3, 20.5)])
        assert result_digest(a) != result_digest(b)

    def test_distance_drift_sensitive(self):
        a = fake_result([(1, 10.0)])
        b = fake_result([(1, 10.001)])
        assert result_digest(a) != result_digest(b)

    def test_last_ulp_noise_absorbed(self):
        # Different summation orders perturb the last few ulps; the
        # 9-significant-digit rounding must absorb that.
        base = 1234.5678901234
        a = fake_result([(1, base)])
        b = fake_result([(1, base * (1.0 + 1e-14))])
        assert result_digest(a) == result_digest(b)

    def test_objective_included(self):
        a = fake_result([(1, 10.0)], objective=2.0)
        b = fake_result([(1, 10.0)], objective=2.5)
        assert result_digest(a) != result_digest(b)

    def test_empty_result(self):
        assert result_digest(fake_result([])) == result_digest(
            fake_result([])
        )


# -- recorder integration against a real database ----------------------
@pytest.fixture()
def recording_db(tiny_db):
    """The shared database with a recorder installed, cleaned up after."""
    yield tiny_db
    tiny_db.disable_flight_recorder()
    tiny_db.engine.disable_shadow()


def _plans(db, index, n=6, seed=31):
    queries = generate_diversified_queries(
        db, WorkloadConfig(num_queries=n, num_keywords=2, k=4, seed=seed)
    )
    return [
        plan_diversified(db, index, query, method="seq")
        for query in queries
    ]


class TestFlightRecorder:
    def test_one_record_per_query(self, recording_db, tiny_indexes):
        db = recording_db
        recorder = db.enable_flight_recorder()
        plans = _plans(db, tiny_indexes["sif"], n=4)
        for i, plan in enumerate(plans):
            db.engine.execute(plan, sequence=i)
        records = recorder.records()
        assert len(records) == 4
        for i, record in enumerate(records):
            assert record["type"] == "flight"
            assert record["kind"] == "diversified"
            assert record["label"] == "SIF/SEQ"
            assert record["algorithm"] == "seq"
            assert record["sequence"] == i
            assert record["digest"]
            assert record["results"] >= 0
            assert record["query"]["terms"] == sorted(
                plans[i].query.terms
            )
            assert record["hints"]["distance_backend"] == "dijkstra"
            assert record["hints"]["scoring"] == db.scoring_mode
            assert "candidates" in record["stats"]
        assert db.metrics.counters()["recorder.records"] >= 4

    def test_digest_stable_across_runs(self, recording_db, tiny_indexes):
        db = recording_db
        recorder = db.enable_flight_recorder()
        plans = _plans(db, tiny_indexes["sif"], n=3)
        for plan in plans:
            db.engine.execute(plan)
        first = [r["digest"] for r in recorder.records()]
        db.disable_flight_recorder()
        recorder = db.enable_flight_recorder()
        for plan in _plans(db, tiny_indexes["sif"], n=3):
            db.engine.execute(plan)
        assert [r["digest"] for r in recorder.records()] == first

    def test_ring_bounds_and_dropped_counter(self):
        recorder = FlightRecorder(max_records=3)
        for update in _fake_updates(5):
            recorder.record_update(update)
        assert len(recorder) == 3
        summary = recorder.summary()
        assert summary["dropped"] == 2
        assert summary["updates"] == 5
        assert summary["buffered"] == 3

    def test_max_records_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(max_records=0)

    def test_jsonl_persistence_header_first(
        self, recording_db, tiny_indexes, tmp_path
    ):
        db = recording_db
        path = tmp_path / "flight.jsonl"
        recorder = db.enable_flight_recorder(path=path)
        recorder.set_header(profile="TINY", scale=1.0, seed=5)
        for plan in _plans(db, tiny_indexes["sif"], n=2):
            db.engine.execute(plan)
        db.disable_flight_recorder()
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert lines[0]["type"] == "flight_header"
        assert lines[0]["version"] == 1
        assert lines[0]["profile"] == "TINY"
        flights = [r for r in lines if r["type"] == "flight"]
        assert len(flights) == 2
        assert all(r["digest"] for r in flights)


def _fake_updates(n):
    from repro.core.updates import UpdateRecord

    return [
        UpdateRecord(epoch=i + 1, kind="delete", edge_id=0, object_id=i)
        for i in range(n)
    ]


class TestUpdateJournalling:
    def test_committed_updates_journalled(self):
        # A private database: updates mutate state.
        from repro.datasets import build_dataset
        from repro.network.graph import NetworkPosition
        from tests.conftest import TINY_PROFILE

        db = build_dataset(TINY_PROFILE)
        index = db.build_index("sif")
        recorder = db.enable_flight_recorder()
        obj = db.insert_object(
            NetworkPosition(0, 1.0), {"pizza"}, indexes=(index,)
        )
        db.delete_object(obj.object_id, indexes=(index,))
        db.update_edge_weight(0, 123.0, indexes=(index,))
        records = recorder.records()
        assert [r["type"] for r in records] == ["flight_update"] * 3
        assert records[0]["kind"] == "insert"
        assert records[0]["object_id"] == obj.object_id
        assert records[0]["terms"] == ["pizza"]
        assert records[1]["kind"] == "delete"
        assert records[1]["object_id"] == obj.object_id
        assert records[2]["kind"] == "edge_weight"
        assert records[2]["weight"] == 123.0
        assert [r["epoch"] for r in records] == [1, 2, 3]
        db.disable_flight_recorder()


class TestConcurrentRecording:
    def test_execute_many_records_every_query_once(
        self, recording_db, tiny_indexes
    ):
        db = recording_db
        recorder = db.enable_flight_recorder()
        db.engine.enable_shadow("ch", rate=1.0)
        plans = _plans(db, tiny_indexes["sif"], n=8)
        db.engine.execute_many(plans, workers=4)
        records = recorder.records()
        assert len(records) == 8
        # Every batch sequence shows up exactly once, whatever order
        # the workers finished in.
        assert sorted(r["sequence"] for r in records) == list(range(8))
        by_seq = {r["sequence"]: r for r in records}

        # Re-run serially: digests must match the concurrent run's.
        db.disable_flight_recorder()
        db.engine.disable_shadow()
        recorder = db.enable_flight_recorder()
        db.engine.execute_many(_plans(db, tiny_indexes["sif"], n=8))
        serial = {r["sequence"]: r for r in recorder.records()}
        for seq in range(8):
            assert serial[seq]["digest"] == by_seq[seq]["digest"]

    def test_shadow_counters_monotonic_under_live_scrapes(
        self, recording_db, tiny_indexes
    ):
        db = recording_db
        db.enable_flight_recorder()
        db.engine.enable_shadow("ch", rate=1.0)
        before = db.metrics.counters()
        server = db.serve_telemetry(port=0)
        seen = []
        stop = threading.Event()

        def scrape() -> None:
            while not stop.is_set():
                with urllib.request.urlopen(
                    server.url + "/recorder", timeout=10
                ) as resp:
                    payload = json.loads(resp.read())
                assert payload["installed"]
                seen.append(payload["summary"]["observed"])

        thread = threading.Thread(target=scrape, daemon=True)
        thread.start()
        try:
            plans = _plans(db, tiny_indexes["sif"], n=8)
            db.engine.execute_many(plans, workers=4)
        finally:
            stop.set()
            thread.join(timeout=10)
            db.stop_telemetry()
        assert seen == sorted(seen), "observed count must be monotonic"
        # Deltas: the session-shared registry may carry earlier tests'
        # shadow traffic (including injected divergences).
        counters = db.metrics.counters()

        def delta(name):
            return counters.get(name, 0) - before.get(name, 0)

        assert delta("shadow.executions") == 8
        assert delta("shadow.divergences") == 0

    def test_recorder_gauges_exported(self, recording_db, tiny_indexes):
        from repro.obs.export import database_gauges

        db = recording_db
        db.enable_flight_recorder()
        for plan in _plans(db, tiny_indexes["sif"], n=2):
            db.engine.execute(plan)
        gauges = database_gauges(db)
        assert gauges["recorder.observed"] == 2
        assert gauges["recorder.buffered"] == 2
        assert gauges["recorder.dropped"] == 0
