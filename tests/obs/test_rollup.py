"""Sliding-window rollup and live-SLO monitor tests."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.rollup import (
    DEFAULT_STREAM,
    LiveSLOMonitor,
    SlidingWindowRollup,
    WindowSnapshot,
)
from repro.obs.slo import SLORule, SLOSpec
from repro.obs.slowlog import SlowQueryLog, SlowQueryThreshold


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


def make_rollup(**kwargs) -> "tuple[SlidingWindowRollup, FakeClock]":
    clock = FakeClock()
    kwargs.setdefault("window_seconds", 10.0)
    kwargs.setdefault("bucket_seconds", 1.0)
    return SlidingWindowRollup(clock=clock, **kwargs), clock


class TestSlidingWindowRollup:
    def test_empty_snapshot(self):
        rollup, _ = make_rollup()
        snap = rollup.snapshot()
        assert snap.count == 0
        assert snap.qps == 0.0
        assert snap.error_rate == 0.0
        assert snap.percentile(95) != snap.percentile(95)  # NaN

    def test_counts_and_qps(self):
        rollup, clock = make_rollup()
        for i in range(50):
            clock.t = i * 0.1  # 5 seconds of recording at 10/s
            rollup.record(0.001)
        snap = rollup.snapshot()
        assert snap.count == 50
        # Covered time is ~5s (clamped to actual recording span).
        assert snap.qps == pytest.approx(50 / snap.covered_seconds)
        assert 8.0 <= snap.qps <= 13.0

    def test_window_excludes_old_buckets(self):
        rollup, clock = make_rollup(window_seconds=5.0)
        rollup.record(1.0)
        clock.t = 100.0
        rollup.record(2.0)
        snap = rollup.snapshot()
        assert snap.count == 1
        assert snap.percentile(50) == pytest.approx(2.0)

    def test_error_and_cache_hit_rates(self):
        rollup, clock = make_rollup()
        for i in range(10):
            clock.t = i * 0.1
            rollup.record(0.01, error=(i < 2), cache_hit=(i % 2 == 0))
        snap = rollup.snapshot()
        assert snap.errors == 2
        assert snap.error_rate == pytest.approx(0.2)
        assert snap.cache_hit_rate == pytest.approx(0.5)

    def test_percentiles_per_stream(self):
        rollup, clock = make_rollup()
        for i in range(100):
            clock.t = i * 0.01
            rollup.record(float(i), stream="a")
            rollup.record(1000.0 + i, stream="b")
        snap = rollup.snapshot()
        assert snap.percentile(50, stream="a") == pytest.approx(49.5, abs=2.0)
        assert snap.percentile(50, stream="b") == pytest.approx(1049.5, abs=2.0)
        assert snap.percentile(99, stream="a") <= 99.0

    def test_narrower_window_requested(self):
        rollup, clock = make_rollup(window_seconds=10.0)
        for second in range(10):
            clock.t = float(second) + 0.5
            rollup.record(float(second))
        snap = rollup.snapshot(window_seconds=3.0)
        # Only the last ~3 buckets (seconds 7, 8, 9).
        assert snap.count == 3
        assert snap.percentile(50) == pytest.approx(8.0)

    def test_bounded_memory_per_bucket(self):
        rollup, clock = make_rollup(max_samples_per_bucket=32)
        for i in range(10_000):
            rollup.record(float(i))  # all in one bucket
        snap = rollup.snapshot()
        assert snap.count == 10_000
        # The per-bucket reservoir stays bounded; exact count survives.
        reservoirs = [
            len(b.streams[DEFAULT_STREAM]._samples)
            for b in rollup._buckets
            if DEFAULT_STREAM in b.streams
        ]
        assert reservoirs and all(n <= 32 for n in reservoirs)
        # Subsampled percentiles still track the distribution.
        assert snap.percentile(50) == pytest.approx(5000.0, rel=0.2)

    def test_concurrent_recording(self):
        rollup, _ = make_rollup()
        per_thread = 2000

        def work(base: float) -> None:
            for i in range(per_thread):
                rollup.record(base + (i % 100) / 100.0)

        threads = [
            threading.Thread(target=work, args=(t * 10.0,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = rollup.snapshot()
        assert snap.count == 4 * per_thread
        assert snap.errors == 0
        p50 = snap.percentile(50)
        assert 0.0 <= p50 <= 31.0  # inside the recorded value range

    def test_to_slo_snapshot_shape(self):
        rollup, clock = make_rollup()
        for i in range(20):
            clock.t = i * 0.05
            rollup.record(0.010, error=(i == 0), cache_hit=True)
        shaped = rollup.snapshot().to_slo_snapshot()
        assert shaped["counters"]["window.count"] == 20
        assert shaped["counters"]["window.errors"] == 1
        assert shaped["counters"]["window.error_rate"] == pytest.approx(0.05)
        assert shaped["counters"]["window.cache_hit_rate"] == pytest.approx(1.0)
        hist = shaped["histograms"][DEFAULT_STREAM]
        assert hist["count"] == 20
        assert hist["p95"] == pytest.approx(0.010)

    def test_to_dict_is_jsonable(self):
        import json

        rollup, _ = make_rollup()
        rollup.record(0.5)
        json.dumps(rollup.snapshot().to_dict())

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowRollup(window_seconds=0)
        with pytest.raises(ValueError):
            SlidingWindowRollup(bucket_seconds=0)
        with pytest.raises(ValueError):
            SlidingWindowRollup(window_seconds=1.0, bucket_seconds=2.0)


def make_spec(p95_threshold: float = 1.0, error_threshold: float = 0.5):
    return SLOSpec(
        name="live-test",
        rules=[
            SLORule(
                name="p95",
                kind="histogram_quantile",
                metric=DEFAULT_STREAM,
                op="<=",
                threshold=p95_threshold,
                quantile=95,
            ),
            SLORule(
                name="errors",
                kind="counter",
                metric="window.error_rate",
                op="<=",
                threshold=error_threshold,
            ),
        ],
    )


class TestLiveSLOMonitor:
    def test_passing_window(self):
        rollup, clock = make_rollup()
        metrics = MetricsRegistry()
        monitor = LiveSLOMonitor(make_spec(), rollup, metrics=metrics)
        for i in range(10):
            clock.t = i * 0.1
            rollup.record(0.001)
        checks = monitor.evaluate()
        assert all(c.passed for c in checks)
        verdict = monitor.verdict()
        assert verdict["passed"] is True
        assert verdict["breach_windows"] == 0
        assert verdict["evaluations"] == 1
        assert metrics.counters().get("slo.breaches", 0) == 0

    def test_breach_counts_into_metrics_and_slowlog(self):
        rollup, clock = make_rollup()
        metrics = MetricsRegistry()
        slowlog = SlowQueryLog(SlowQueryThreshold(latency_seconds=100.0))
        monitor = LiveSLOMonitor(
            make_spec(p95_threshold=0.001), rollup,
            metrics=metrics, slowlog=slowlog,
        )
        for i in range(10):
            clock.t = i * 0.1
            rollup.record(0.5)  # way over the 1 ms p95 bound
        checks = monitor.evaluate()
        assert any(not c.passed for c in checks)
        verdict = monitor.verdict()
        assert verdict["passed"] is False
        assert verdict["breach_windows"] == 1
        counters = metrics.counters()
        assert counters["slo.breaches"] == 1
        assert counters["slo.breach#p95"] == 1
        notes = [r for r in slowlog.records() if r["type"] == "slo_breach"]
        assert len(notes) == 1
        assert notes[0]["spec"] == "live-test"
        assert notes[0]["failed"][0]["rule"]["name"] == "p95"

    def test_breach_then_recovery(self):
        rollup, clock = make_rollup(window_seconds=2.0)
        metrics = MetricsRegistry()
        monitor = LiveSLOMonitor(
            make_spec(p95_threshold=0.01), rollup, metrics=metrics
        )
        rollup.record(1.0)
        monitor.evaluate()
        assert monitor.verdict()["passed"] is False
        # The slow window ages out; fresh traffic is fast.
        clock.t = 60.0
        rollup.record(0.001)
        monitor.evaluate()
        verdict = monitor.verdict()
        assert verdict["passed"] is True
        assert verdict["breach_windows"] == 1
        assert verdict["evaluations"] == 2

    def test_no_data_rules_skip(self):
        rollup, _ = make_rollup()
        monitor = LiveSLOMonitor(make_spec(), rollup)
        checks = monitor.evaluate()
        # Empty window: quantile rule has no data, rate rule sees 0.
        by_name = {c.rule.name: c for c in checks}
        assert by_name["p95"].no_data
        assert by_name["p95"].passed  # skip, not fail
