"""Telemetry HTTP server tests: live scrapes against a real database."""

from __future__ import annotations

import json
import re
import urllib.error
import urllib.request

import pytest

from repro.engine.plan import plan_diversified
from repro.obs.export import VALID_METRIC_NAME
from repro.workloads import WorkloadConfig, generate_diversified_queries


@pytest.fixture()
def served(tiny_db, tiny_indexes):
    """The tiny database serving telemetry on an ephemeral port."""
    server = tiny_db.serve_telemetry(port=0)
    yield tiny_db, tiny_indexes["sif"], server
    tiny_db.stop_telemetry()


def get(server, route: str):
    with urllib.request.urlopen(server.url + route, timeout=10) as resp:
        return resp.status, resp.headers, resp.read().decode("utf-8")


def run_queries(db, index, n: int = 4):
    queries = generate_diversified_queries(
        db, WorkloadConfig(num_queries=n, k=3, seed=31)
    )
    for query in queries:
        db.engine.execute(plan_diversified(db, index, query, method="seq"))


class TestRoutes:
    def test_root_lists_routes(self, served):
        _, _, server = served
        status, _, body = get(server, "/")
        assert status == 200
        for route in ("/metrics", "/healthz", "/vars", "/slowlog"):
            assert route in body

    def test_unknown_route_404(self, served):
        _, _, server = served
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server, "/nope")
        assert err.value.code == 404

    def test_metrics_prometheus(self, served):
        db, index, server = served
        run_queries(db, index)
        status, headers, body = get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        # Every sample line uses a valid Prometheus metric name.
        for line in body.splitlines():
            if not line or line.startswith("#"):
                continue
            name = re.split(r"[{ ]", line, maxsplit=1)[0]
            assert VALID_METRIC_NAME.match(name), line
        assert "repro_query_count" in body
        # Plan labels are exported as labelled families, escaped.
        assert re.search(r'repro_query_plan\{plan="SIF/SEQ"\} \d+', body)

    def test_metrics_counters_monotonic_across_scrapes(self, served):
        db, index, server = served

        def query_count() -> int:
            _, _, body = get(server, "/metrics")
            match = re.search(r"^repro_query_count (\d+)$", body, re.M)
            assert match, "repro_query_count missing"
            return int(match.group(1))

        before = query_count()
        run_queries(db, index, n=3)
        middle = query_count()
        run_queries(db, index, n=2)
        after = query_count()
        assert before <= middle <= after
        assert after >= before + 5

    def test_healthz(self, served):
        db, index, server = served
        run_queries(db, index, n=1)
        status, headers, body = get(server, "/healthz")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["data_version"] == db.data_version
        assert health["uptime_seconds"] > 0
        assert health["queries"] >= 1
        assert "epoch" in health and "errors" in health

    def test_vars_snapshot(self, served):
        db, index, server = served
        run_queries(db, index, n=2)
        _, _, body = get(server, "/vars")
        doc = json.loads(body)
        assert doc["counters"]["query.count"] >= 2
        assert "gauges" in doc
        assert doc["data_version"] == db.data_version
        assert "window" in doc  # rollup enabled by serve_telemetry

    def test_slowlog_route(self, served):
        db, index, server = served
        db.enable_slow_query_log(latency_seconds=0.0)
        try:
            run_queries(db, index, n=3)
            _, _, body = get(server, "/slowlog?limit=2")
            doc = json.loads(body)
            assert len(doc["records"]) == 2
            # Trace payloads are stripped unless ?trace=1.
            assert all("trace" not in r for r in doc["records"])
        finally:
            db.disable_slow_query_log()

    def test_profile_route(self, served):
        db, index, server = served
        profiler = db.enable_profiler(hz=200.0)
        try:
            run_queries(db, index, n=3)
            _, headers, body = get(server, "/profile")
        finally:
            db.disable_profiler()
        assert profiler.stats()["samples"] >= 0
        assert headers["Content-Type"].startswith("text/plain")
        for line in body.splitlines():
            if line:
                int(line.rsplit(" ", 1)[1])

    def test_profile_route_404_without_profiler(self, served):
        _, _, server = served
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server, "/profile")
        assert err.value.code == 404

    def test_scrape_self_metrics(self, served):
        _, _, server = served
        get(server, "/healthz")
        _, _, body = get(server, "/vars")
        doc = json.loads(body)
        assert doc["counters"]["telemetry.scrapes"] >= 2
        assert doc["counters"]["telemetry.scrape#healthz"] >= 1


class TestLifecycle:
    def test_serve_telemetry_idempotent(self, tiny_db):
        server = tiny_db.serve_telemetry(port=0)
        try:
            again = tiny_db.serve_telemetry(port=0)
            assert again is server
        finally:
            tiny_db.stop_telemetry()
        assert tiny_db.telemetry_server is None
        assert not server.running

    def test_stopped_server_refuses_connections(self, tiny_db):
        server = tiny_db.serve_telemetry(port=0)
        url = server.url
        tiny_db.stop_telemetry()
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url + "/healthz", timeout=2)
