"""Tests for metric record sinks (repro.obs.sinks)."""

import json
import math

import pytest

from repro.obs.sinks import InMemorySink, JsonLinesSink


class TestInMemorySink:
    def test_collects_and_filters(self):
        sink = InMemorySink()
        sink.emit({"type": "query", "n": 1})
        sink.emit({"type": "workload", "n": 2})
        sink.emit({"type": "query", "n": 3})
        assert [r["n"] for r in sink.of_type("query")] == [1, 3]
        sink.clear()
        assert sink.records == []


class TestJsonLinesSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with JsonLinesSink(path) as sink:
            sink.emit({"type": "query", "ms": 1.5})
            sink.emit({"type": "workload", "label": "SIF"})
            assert sink.records_written == 2
        lines = path.read_text().splitlines()
        assert [json.loads(line)["type"] for line in lines] == [
            "query", "workload",
        ]

    def test_appends_across_instances(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with JsonLinesSink(path) as sink:
            sink.emit({"n": 1})
        with JsonLinesSink(path) as sink:
            sink.emit({"n": 2})
        assert len(path.read_text().splitlines()) == 2

    def test_non_json_values_are_coerced(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with JsonLinesSink(path) as sink:
            sink.emit({"d": math.inf, "s": {1, 2}})
        record = json.loads(path.read_text())
        assert record["d"] == math.inf  # json accepts Infinity literals
        assert isinstance(record["s"], str)

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonLinesSink(tmp_path / "metrics.jsonl")
        sink.close()
        with pytest.raises(ValueError):
            sink.emit({"n": 1})
        sink.close()  # idempotent

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "metrics.jsonl"
        with JsonLinesSink(path) as sink:
            sink.emit({"n": 1})
        assert path.exists()
