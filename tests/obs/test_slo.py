"""Tests for declarative SLO evaluation (repro.obs.slo)."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLORule, SLOSpec

SNAPSHOT = {
    "counters": {
        "query.count": 100,
        "query.diversified_count": 40,
        "query.early_terminations": 18,
        "distance_cache.hits": 60,
        "distance_cache.misses": 40,
    },
    "histograms": {
        "query.wall_seconds": {
            "count": 100, "sum": 1.2, "mean": 0.012,
            "min": 0.001, "max": 0.09,
            "p50": 0.008, "p95": 0.03, "p99": 0.06,
        },
    },
}


class TestRuleValidation:
    def test_rejects_unknown_kind_and_op(self):
        with pytest.raises(ValueError):
            SLORule("x", "gauge", "m", "<=", 1)
        with pytest.raises(ValueError):
            SLORule("x", "counter", "m", "<", 1)

    def test_quantile_required_for_histogram_rules(self):
        with pytest.raises(ValueError):
            SLORule("x", "histogram_quantile", "m", "<=", 1, quantile=90)

    def test_ratio_needs_denominator(self):
        with pytest.raises(ValueError):
            SLORule("x", "counter_ratio", "hits", ">=", 0.5)


class TestEvaluation:
    def test_p95_latency_rule(self):
        rule = SLORule(
            "p95 latency", "histogram_quantile", "query.wall_seconds",
            "<=", 0.05, quantile=95,
        )
        check = rule.check(SNAPSHOT)
        assert check.passed and check.value == 0.03
        tight = SLORule(
            "p95 latency", "histogram_quantile", "query.wall_seconds",
            "<=", 0.02, quantile=95,
        ).check(SNAPSHOT)
        assert not tight.passed
        assert "FAIL" in tight.render()

    def test_cache_hit_rate_rule(self):
        rule = SLORule(
            "cache hit rate", "counter_ratio", "distance_cache.hits",
            ">=", 0.5,
            denominator=("distance_cache.hits", "distance_cache.misses"),
        )
        check = rule.check(SNAPSHOT)
        assert check.passed and check.value == pytest.approx(0.6)

    def test_early_termination_share_rule(self):
        rule = SLORule(
            "early-termination share", "counter_ratio",
            "query.early_terminations", ">=", 0.3,
            denominator=("query.diversified_count",),
        )
        check = rule.check(SNAPSHOT)
        assert check.passed and check.value == pytest.approx(0.45)

    def test_counter_rule(self):
        rule = SLORule("ran queries", "counter", "query.count", ">=", 1)
        assert rule.check(SNAPSHOT).passed

    def test_no_data_passes_with_skip(self):
        rule = SLORule(
            "absent", "histogram_quantile", "nope", "<=", 1, quantile=95
        )
        check = rule.check(SNAPSHOT)
        assert check.passed and check.no_data
        assert check.render().startswith("SKIP")
        ratio = SLORule(
            "zero denom", "counter_ratio", "query.count", ">=", 0.5,
            denominator=("does.not.exist",),
        ).check(SNAPSHOT)
        assert ratio.passed and ratio.no_data


class TestSpec:
    def test_round_trip_and_evaluate(self):
        spec = SLOSpec("serving", [
            SLORule("p95", "histogram_quantile", "query.wall_seconds",
                    "<=", 0.05, quantile=95),
            SLORule("hit rate", "counter_ratio", "distance_cache.hits",
                    ">=", 0.5,
                    denominator=("distance_cache.hits",
                                 "distance_cache.misses")),
        ])
        rebuilt = SLOSpec.from_dict(spec.to_dict())
        checks = rebuilt.evaluate(SNAPSHOT)
        assert [c.passed for c in checks] == [True, True]
        assert spec.to_dict()["schema"] == "repro-slo-spec/v1"

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            SLOSpec("empty", [])

    def test_against_live_registry_snapshot(self):
        registry = MetricsRegistry()
        registry.inc("query.count", 3)
        for value in (0.01, 0.02, 0.03):
            registry.observe("query.wall_seconds", value)
        spec = SLOSpec("live", [
            SLORule("count", "counter", "query.count", ">=", 3),
            SLORule("p99", "histogram_quantile", "query.wall_seconds",
                    "<=", 10.0, quantile=99),
        ])
        assert all(c.passed for c in spec.evaluate(registry.snapshot()))
