"""Tests for the slow-query log (repro.obs.slowlog)."""

import json

import pytest

from repro.core.queries import QueryStats
from repro.engine import plan_diversified
from repro.obs.slowlog import (
    SlowQueryLog,
    SlowQueryThreshold,
    render_record,
    stats_to_dict,
)
from repro.workloads.queries import WorkloadConfig, generate_diversified_queries


def _stats(wall=0.01, nodes=100):
    return QueryStats(wall_seconds=wall, nodes_accessed=nodes)


class TestThreshold:
    def test_requires_at_least_one_bound(self):
        with pytest.raises(ValueError):
            SlowQueryThreshold()
        with pytest.raises(ValueError):
            SlowQueryThreshold(latency_seconds=-1)
        with pytest.raises(ValueError):
            SlowQueryThreshold(visited_nodes=-1)

    def test_exceeded_is_inclusive(self):
        t = SlowQueryThreshold(latency_seconds=0.01, visited_nodes=50)
        assert t.exceeded(0.01, 49) == ["latency"]
        assert t.exceeded(0.009, 50) == ["visited_nodes"]
        assert t.exceeded(0.02, 60) == ["latency", "visited_nodes"]
        assert t.exceeded(0.005, 10) == []

    def test_zero_latency_matches_everything(self):
        t = SlowQueryThreshold(latency_seconds=0)
        assert t.exceeded(0.0) == ["latency"]

    def test_verdict_wording(self):
        t = SlowQueryThreshold(latency_seconds=0.01)
        assert t.verdict(0.02).startswith("SLOW — ")
        assert t.verdict(0.001).startswith("OK — ")


class TestSlowQueryLog:
    def test_capture_and_skip(self):
        log = SlowQueryLog(SlowQueryThreshold(latency_seconds=0.01))
        assert log.offer("SIF/COM", "diversified",
                         _stats(wall=0.005)) is None
        record = log.offer(
            "SIF/COM", "diversified", _stats(wall=0.02),
            algorithm="com", results=5, worker="w1",
        )
        assert record is not None
        assert record["label"] == "SIF/COM"
        assert record["exceeded"] == ["latency"]
        assert record["stats"]["wall_seconds"] == 0.02
        assert len(log) == 1
        summary = log.summary()
        assert summary["observed"] == 2 and summary["captured"] == 1

    def test_bounded_keeps_most_recent(self):
        log = SlowQueryLog(
            SlowQueryThreshold(latency_seconds=0), max_records=2
        )
        for i in range(4):
            log.offer(f"L{i}", "sk", _stats())
        records = log.records()
        assert [r["label"] for r in records] == ["L2", "L3"]
        assert log.dropped == 2

    def test_jsonl_sink_flushes_per_record(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(
            SlowQueryThreshold(latency_seconds=0), path=path
        )
        log.offer("SIF/INE", "sk", _stats(), worker="w")
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["type"] == "slow_query"
        assert record["worker"] == "w"
        log.close()

    def test_render_without_trace_falls_back_to_stages(self):
        stats = _stats(wall=0.02)
        stats.stage_seconds["expansion"] = 0.015
        log = SlowQueryLog(SlowQueryThreshold(latency_seconds=0))
        record = log.offer("SIF/COM", "diversified", stats)
        text = render_record(record)
        assert "SLOW QUERY #1" in text
        assert "expansion" in text
        assert "run with tracing on" in text

    def test_stats_to_dict_includes_io_when_present(self):
        stats = _stats()
        assert "io" not in stats_to_dict(stats)


class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def sif(self, tiny_db):
        return tiny_db.build_index("sif", file_prefix="slowlog-sif")

    def test_traced_offenders_carry_span_trees(self, tiny_db, sif):
        tiny_db.enable_tracing(max_traces=64)
        log = tiny_db.enable_slow_query_log(latency_seconds=0.0)
        try:
            queries = generate_diversified_queries(
                tiny_db,
                WorkloadConfig(num_queries=6, num_keywords=2, k=4, seed=81),
            )
            plans = [
                plan_diversified(tiny_db, sif, q, method="com")
                for q in queries
            ]
            tiny_db.engine.execute_many(plans, workers=3)
            records = log.records()
            assert len(records) == len(plans)
            for record in records:
                assert record["label"] == f"{sif.name}/COM"
                assert record["trace"] is not None
                assert record["trace"]["name"] == "query.diversified"
                assert record["worker"].startswith("repro-query")
                rendered = render_record(record)
                assert "SLOW QUERY" in rendered
                assert "diversified query" in rendered
        finally:
            tiny_db.disable_slow_query_log()
            tiny_db.disable_tracing()

    def test_fast_queries_not_captured(self, tiny_db, sif):
        log = tiny_db.enable_slow_query_log(latency_seconds=3600.0)
        try:
            queries = generate_diversified_queries(
                tiny_db,
                WorkloadConfig(num_queries=2, num_keywords=2, k=4, seed=82),
            )
            plans = [
                plan_diversified(tiny_db, sif, q, method="seq")
                for q in queries
            ]
            tiny_db.engine.execute_many(plans)
            assert len(log) == 0
            assert log.summary()["observed"] == len(plans)
        finally:
            tiny_db.disable_slow_query_log()


class TestTolerantRendering:
    def test_malformed_span_tree_falls_back_to_stats(self):
        stats = _stats(wall=0.02)
        stats.stage_seconds["expansion"] = 0.015
        log = SlowQueryLog(SlowQueryThreshold(latency_seconds=0))
        record = log.offer("SIF/COM", "diversified", stats)
        record["trace"] = {"not": "a span tree"}
        text = render_record(record)
        assert "SLOW QUERY #1" in text
        assert "span tree malformed" in text
        assert "expansion" in text

    def test_header_carries_epoch_and_result_cache(self):
        stats = _stats(wall=0.02)
        stats.epoch = 7
        stats.result_cache_hit = True
        log = SlowQueryLog(SlowQueryThreshold(latency_seconds=0))
        record = log.offer("SIF/COM", "diversified", stats)
        text = render_record(record)
        assert "[epoch 7]" in text
        assert "[result-cache HIT]" in text

    def test_pre_epoch_records_render(self):
        """Records from older schemas (no epoch/result-cache) still render."""
        record = {
            "type": "slow_query", "seq": 1, "label": "L",
            "wall_seconds": 0.01, "nodes_accessed": 5,
            "exceeded": ["latency"], "worker": "w",
            "stats": {"stage_seconds": {"expansion": 0.01}},
        }
        text = render_record(record)
        assert "SLOW QUERY #1" in text
        assert "[epoch" not in text

    def test_note_appends_and_respects_bound(self):
        log = SlowQueryLog(
            SlowQueryThreshold(latency_seconds=0), max_records=2
        )
        log.offer("L", "sk", _stats())
        log.note({"type": "slo_breach", "spec": "s", "window": {}, "failed": []})
        log.note({"type": "slo_breach", "spec": "s2", "window": {}, "failed": []})
        records = log.records()
        assert len(records) == 2
        assert log.dropped == 1
        assert records[-1]["spec"] == "s2"

    def test_note_streams_to_sink(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(
            SlowQueryThreshold(latency_seconds=0), path=path
        )
        log.note({"type": "slo_breach", "spec": "s", "window": {}, "failed": []})
        log.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["type"] == "slo_breach"

    def test_render_breach_record(self):
        from repro.obs.slowlog import render_breach_record

        record = {
            "type": "slo_breach",
            "spec": "live",
            "window": {
                "window_seconds": 10.0, "count": 42, "qps": 4.2,
                "error_rate": 0.25,
            },
            "failed": [{
                "rule": {
                    "name": "p95", "metric": "query.wall_seconds",
                    "op": "<=", "threshold": 0.001,
                },
                "value": 0.5,
            }],
        }
        text = render_breach_record(record)
        assert "SLO BREACH" in text
        assert "[live]" in text
        assert "42 queries" in text
        assert "error rate 25.0%" in text
        assert "FAIL p95" in text
        # render_record routes breach notes to the breach renderer.
        assert render_record(record) == text
