"""Tests for the span-tracing primitives (repro.obs.tracing)."""

import pytest

from repro.obs.tracing import NULL_TRACER, NullTracer, Span, Tracer


class TestSpanTree:
    def test_nested_spans_build_a_tree(self):
        tracer = Tracer()
        with tracer.span("root", kind="query"):
            with tracer.span("child_a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child_b"):
                pass
        assert len(tracer.traces) == 1
        root = tracer.last_trace
        assert root.name == "root"
        assert root.attrs == {"kind": "query"}
        assert [c.name for c in root.children] == ["child_a", "child_b"]
        assert root.children[0].children[0].name == "grandchild"

    def test_durations_are_measured_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.last_trace
        inner = outer.children[0]
        assert outer.duration >= inner.duration >= 0.0
        assert inner.start >= outer.start

    def test_top_level_spans_become_separate_traces(self):
        tracer = Tracer()
        for i in range(3):
            with tracer.span("query", n=i):
                pass
        assert len(tracer.traces) == 3
        assert [t.attrs["n"] for t in tracer.traces] == [0, 1, 2]

    def test_set_updates_attributes(self):
        tracer = Tracer()
        with tracer.span("q") as span:
            span.set(results=7, candidates=20)
        assert tracer.last_trace.attrs == {"results": 7, "candidates": 20}

    def test_exception_unwinds_the_stack(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.current is None
        # A new span after the exception starts a fresh trace.
        with tracer.span("next"):
            pass
        assert [t.name for t in tracer.traces] == ["outer", "next"]


class TestAddSpan:
    def test_completed_span_attaches_to_current(self):
        tracer = Tracer()
        with tracer.span("root"):
            tracer.add_span("round", 0.25, frontier=3)
        child = tracer.last_trace.children[0]
        assert child.name == "round"
        assert child.duration == 0.25
        assert child.attrs == {"frontier": 3}

    def test_backdated_start_when_omitted(self):
        tracer = Tracer()
        with tracer.span("root"):
            span = tracer.add_span("work", 0.5)
            now = tracer._now()
        # Backdated: the span ends (start + duration) at record time.
        assert span.start + span.duration == pytest.approx(now, abs=0.05)
        assert span.duration == 0.5

    def test_explicit_start_is_relative_to_origin(self):
        import time

        tracer = Tracer()
        t0 = time.perf_counter()
        with tracer.span("root"):
            span = tracer.add_span("work", 0.001, start=t0)
        assert 0.0 <= span.start <= tracer._now()


class TestEvents:
    def test_events_attach_to_current_span(self):
        tracer = Tracer()
        with tracer.span("root"):
            tracer.event("prune", edge=4)
            with tracer.span("child"):
                tracer.event("hit")
        root = tracer.last_trace
        assert root.event_count("prune") == 1
        assert root.children[0].event_count("hit") == 1
        name, ts, attrs = root.events[0]
        assert (name, attrs) == ("prune", {"edge": 4})
        assert ts >= 0.0

    def test_event_without_open_span_is_dropped(self):
        tracer = Tracer()
        tracer.event("orphan")
        assert tracer.traces == []

    def test_max_events_bound_with_drop_counter(self):
        tracer = Tracer(max_events=2)
        with tracer.span("root") as span:
            for _ in range(5):
                tracer.event("e")
        assert len(span.events) == 2
        assert span.dropped_events == 3
        assert "dropped_events" in span.to_dict()


class TestBounds:
    def test_max_children_bound(self):
        tracer = Tracer(max_children=2)
        with tracer.span("root") as root:
            for i in range(4):
                tracer.add_span("c", 0.0, n=i)
        assert len(root.children) == 2
        assert root.dropped_children == 2

    def test_max_traces_drops_oldest(self):
        tracer = Tracer(max_traces=2)
        for i in range(4):
            with tracer.span("q", n=i):
                pass
        assert [t.attrs["n"] for t in tracer.traces] == [2, 3]
        assert tracer.dropped_traces == 2

    def test_clear(self):
        tracer = Tracer(max_traces=1)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        tracer.clear()
        assert tracer.traces == []
        assert tracer.dropped_traces == 0


class TestIntrospection:
    def _tree(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("x"):
                tracer.add_span("leaf", 0.0, n=1)
            tracer.add_span("leaf", 0.0, n=2)
        return tracer.last_trace

    def test_walk_is_depth_first(self):
        root = self._tree()
        assert [s.name for s in root.walk()] == ["root", "x", "leaf", "leaf"]

    def test_find_and_find_all(self):
        root = self._tree()
        assert root.find("leaf").attrs == {"n": 1}
        assert [s.attrs["n"] for s in root.find_all("leaf")] == [1, 2]
        assert root.find("missing") is None

    def test_to_dict_round_trips_structure(self):
        import json

        root = self._tree()
        doc = root.to_dict()
        json.dumps(doc)  # JSON-able
        assert doc["name"] == "root"
        assert [c["name"] for c in doc["children"]] == ["x", "leaf"]


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        with NULL_TRACER.span("q", a=1) as span:
            span.set(b=2)
            span.event("e")
        NULL_TRACER.event("x")
        NULL_TRACER.add_span("y", 1.0)
        assert NULL_TRACER.last_trace is None
        assert NULL_TRACER.current is None
        assert list(NULL_TRACER.traces) == []

    def test_no_allocation_on_disabled_path(self):
        """The structural no-overhead property: every span/add_span on
        the null tracer returns the same shared no-op object, so the
        disabled path allocates nothing per call."""
        a = NULL_TRACER.span("one", attr=1)
        b = NULL_TRACER.span("two")
        c = NULL_TRACER.add_span("three", 0.5)
        assert a is b is c

    def test_instrumentation_guard_pattern(self):
        """Hot paths guard attribute-dict construction on `enabled`."""
        tracer = NULL_TRACER
        built = []
        if tracer.enabled:  # the guard every hot path uses
            built.append({"expensive": "dict"})
        assert built == []


class TestSpanStandalone:
    def test_span_without_tracer_records_events(self):
        span = Span(None, "detached", {})
        span.event("e", k=1)
        assert span.event_count("e") == 1
