"""Tests for repro.spatial.geometry."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.spatial.geometry import MBR, Point, point_segment_distance, project_onto_segment

coords = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_to_self_is_zero(self):
        p = Point(2.5, -7.0)
        assert p.distance_to(p) == 0.0

    def test_as_tuple_and_iter(self):
        p = Point(1.0, 2.0)
        assert p.as_tuple() == (1.0, 2.0)
        assert tuple(p) == (1.0, 2.0)

    def test_points_are_hashable_and_equal_by_value(self):
        assert Point(1, 2) == Point(1, 2)
        assert len({Point(1, 2), Point(1, 2)}) == 1

    @given(coords, coords, coords, coords)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(coords, coords, coords, coords, coords, coords)
    def test_triangle_inequality(self, x1, y1, x2, y2, x3, y3):
        a, b, c = Point(x1, y1), Point(x2, y2), Point(x3, y3)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


class TestMBR:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            MBR(1, 0, 0, 1)

    def test_point_mbr_is_valid(self):
        box = MBR(5, 5, 5, 5)
        assert box.area == 0.0
        assert box.contains_point(Point(5, 5))

    def test_from_points(self):
        box = MBR.from_points([Point(0, 1), Point(2, -1), Point(1, 0)])
        assert (box.xmin, box.ymin, box.xmax, box.ymax) == (0, -1, 2, 1)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            MBR.from_points([])

    def test_center_and_dims(self):
        box = MBR(0, 0, 4, 2)
        assert box.center == Point(2, 1)
        assert box.width == 4
        assert box.height == 2
        assert box.area == 8
        assert box.perimeter == 12

    def test_intersects_touching_edges(self):
        a = MBR(0, 0, 1, 1)
        b = MBR(1, 1, 2, 2)
        assert a.intersects(b)
        assert b.intersects(a)

    def test_disjoint(self):
        a = MBR(0, 0, 1, 1)
        b = MBR(2, 2, 3, 3)
        assert not a.intersects(b)

    def test_contains(self):
        outer = MBR(0, 0, 10, 10)
        inner = MBR(2, 2, 5, 5)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_union(self):
        a = MBR(0, 0, 1, 1)
        b = MBR(2, 2, 3, 3)
        u = a.union(b)
        assert u.contains(a) and u.contains(b)

    def test_enlargement_zero_when_contained(self):
        outer = MBR(0, 0, 10, 10)
        inner = MBR(2, 2, 5, 5)
        assert outer.enlargement(inner) == 0.0
        assert inner.enlargement(outer) == pytest.approx(100 - 9)

    def test_min_distance_inside_is_zero(self):
        box = MBR(0, 0, 10, 10)
        assert box.min_distance_to_point(Point(5, 5)) == 0.0

    def test_min_distance_outside(self):
        box = MBR(0, 0, 10, 10)
        assert box.min_distance_to_point(Point(13, 14)) == pytest.approx(5.0)

    def test_union_all(self):
        boxes = [MBR(i, i, i + 1, i + 1) for i in range(3)]
        u = MBR.union_all(boxes)
        assert (u.xmin, u.ymin, u.xmax, u.ymax) == (0, 0, 3, 3)

    def test_union_all_empty_raises(self):
        with pytest.raises(ValueError):
            MBR.union_all([])

    @given(coords, coords, coords, coords, coords, coords)
    def test_union_covers_both(self, x1, y1, x2, y2, x3, y3):
        a = MBR(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        b = MBR(min(x2, x3), min(y2, y3), max(x2, x3), max(y2, y3))
        u = a.union(b)
        assert u.contains(a) and u.contains(b)


class TestSegmentProjection:
    def test_projection_inside(self):
        p, t = project_onto_segment(Point(5, 3), Point(0, 0), Point(10, 0))
        assert p == Point(5, 0)
        assert t == pytest.approx(0.5)

    def test_projection_clamps_to_endpoints(self):
        p, t = project_onto_segment(Point(-4, 2), Point(0, 0), Point(10, 0))
        assert p == Point(0, 0)
        assert t == 0.0
        p, t = project_onto_segment(Point(40, 2), Point(0, 0), Point(10, 0))
        assert p == Point(10, 0)
        assert t == 1.0

    def test_degenerate_segment(self):
        p, t = project_onto_segment(Point(3, 4), Point(1, 1), Point(1, 1))
        assert p == Point(1, 1)
        assert t == 0.0

    def test_point_segment_distance(self):
        assert point_segment_distance(Point(5, 3), Point(0, 0), Point(10, 0)) == 3.0
        assert point_segment_distance(Point(-3, 4), Point(0, 0), Point(10, 0)) == 5.0

    @given(coords, coords, coords, coords, coords, coords)
    def test_distance_never_exceeds_endpoint_distances(self, px, py, ax, ay, bx, by):
        p, a, b = Point(px, py), Point(ax, ay), Point(bx, by)
        d = point_segment_distance(p, a, b)
        assert d <= p.distance_to(a) + 1e-6
        assert d <= p.distance_to(b) + 1e-6
