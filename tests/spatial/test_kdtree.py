"""Tests for the KD-tree signature-compaction partitioner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import Point
from repro.spatial.kdtree import KDTreePartition


def random_centers(n, seed=0):
    rng = np.random.default_rng(seed)
    return [Point(float(x), float(y)) for x, y in rng.uniform(0, 100, size=(n, 2))]


class TestConstruction:
    def test_empty(self):
        tree = KDTreePartition([])
        assert tree.root is None
        assert tree.compact_node_count(set()) == 0

    def test_single_item(self):
        tree = KDTreePartition([Point(1, 2)])
        assert tree.root.is_leaf
        assert tree.num_nodes == 1

    def test_invalid_leaf_size(self):
        with pytest.raises(ValueError):
            KDTreePartition([Point(0, 0)], leaf_size=0)

    def test_all_items_covered_once(self):
        centers = random_centers(33)
        tree = KDTreePartition(centers)
        leaves = []

        def collect(node):
            if node.is_leaf:
                leaves.extend(node.item_ids)
            else:
                collect(node.left)
                collect(node.right)

        collect(tree.root)
        assert sorted(leaves) == list(range(33))

    def test_node_count_linear(self):
        centers = random_centers(64)
        tree = KDTreePartition(centers)
        # A binary tree over n leaves has 2n - 1 nodes.
        assert tree.num_nodes == 2 * 64 - 1


class TestCompaction:
    def test_uniform_zero_collapses_to_root(self):
        tree = KDTreePartition(random_centers(50))
        assert tree.compact_node_count(set()) == 1

    def test_uniform_one_collapses_to_root(self):
        tree = KDTreePartition(random_centers(50))
        assert tree.compact_node_count(set(range(50))) == 1

    def test_mixed_needs_more_nodes(self):
        centers = random_centers(64, seed=1)
        tree = KDTreePartition(centers)
        # Alternate bits in space: clustered ones compact better than
        # scattered ones.
        left_half = {i for i, c in enumerate(centers) if c.x < 50}
        rng = np.random.default_rng(2)
        scattered = set(rng.choice(64, size=len(left_half), replace=False).tolist())
        assert tree.compact_node_count(left_half) <= tree.compact_node_count(scattered)

    def test_single_one_cost_logarithmic(self):
        tree = KDTreePartition(random_centers(128, seed=3))
        count = tree.compact_node_count({5})
        # Path from root to one leaf plus collapsed siblings: O(log n).
        assert count <= 2 * 8 + 1

    def test_size_bytes_positive_and_monotone_wrt_nodes(self):
        tree = KDTreePartition(random_centers(64, seed=4))
        all_ones = set(range(64))
        single = {0}
        assert tree.compact_size_bytes(all_ones) <= tree.compact_size_bytes(single)

    @settings(max_examples=20, deadline=None)
    @given(st.sets(st.integers(0, 31)))
    def test_count_bounded_by_full_tree(self, ones):
        tree = KDTreePartition(random_centers(32, seed=7))
        count = tree.compact_node_count(ones)
        assert 1 <= count <= tree.num_nodes

    def test_leaf_size_greater_than_one(self):
        centers = random_centers(40, seed=9)
        tree = KDTreePartition(centers, leaf_size=4)
        assert tree.num_nodes < 2 * 40 - 1
        assert tree.compact_node_count(set()) == 1
        assert tree.compact_node_count({0}) >= 1
