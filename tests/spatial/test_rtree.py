"""Tests for repro.spatial.rtree against brute-force references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.spatial.geometry import MBR, Point
from repro.spatial.rtree import RTree, RTreeEntry
from repro.storage.pagefile import DiskManager


def make_tree(entries, fanout=None):
    disk = DiskManager(buffer_pages=64)
    file = disk.create_file("rtree", category="rtree")
    tree = RTree(file, fanout=fanout)
    tree.bulk_load(entries)
    return tree, disk


def random_entries(n, seed=0):
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0, 1000, size=(n, 2))
    return [
        RTreeEntry(MBR(x, y, x, y), i) for i, (x, y) in enumerate(pts)
    ], pts


class TestBulkLoad:
    def test_empty_tree(self):
        tree, _ = make_tree([])
        assert len(tree) == 0
        assert list(tree.window(MBR(0, 0, 10, 10))) == []
        assert tree.nearest(Point(0, 0)) == []

    def test_double_build_rejected(self):
        tree, _ = make_tree([RTreeEntry(MBR(0, 0, 1, 1), 0)])
        with pytest.raises(StorageError):
            tree.bulk_load([])

    def test_small_fanout_builds_multiple_levels(self):
        entries, _ = random_entries(100)
        tree, _ = make_tree(entries, fanout=4)
        assert tree.height >= 3
        assert len(tree) == 100

    def test_invalid_fanout(self):
        disk = DiskManager()
        file = disk.create_file("bad", category="rtree")
        with pytest.raises(ValueError):
            RTree(file, fanout=1)

    def test_all_entries_scan(self):
        entries, _ = random_entries(57)
        tree, _ = make_tree(entries, fanout=8)
        assert sorted(e.payload for e in tree.all_entries()) == list(range(57))


class TestWindow:
    @pytest.mark.parametrize("fanout", [4, 16, None])
    def test_window_matches_brute_force(self, fanout):
        entries, pts = random_entries(300, seed=3)
        tree, _ = make_tree(entries, fanout=fanout)
        region = MBR(200, 200, 600, 700)
        expected = {
            i
            for i, (x, y) in enumerate(pts)
            if 200 <= x <= 600 and 200 <= y <= 700
        }
        got = {e.payload for e in tree.window(region)}
        assert got == expected

    def test_window_outside_space(self):
        entries, _ = random_entries(50)
        tree, _ = make_tree(entries)
        assert list(tree.window(MBR(5000, 5000, 6000, 6000))) == []

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(0, 1000),
        st.floats(0, 1000),
        st.floats(0, 1000),
        st.floats(0, 1000),
    )
    def test_window_random_regions(self, x1, y1, x2, y2):
        entries, pts = random_entries(120, seed=8)
        tree, _ = make_tree(entries, fanout=8)
        region = MBR(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        expected = {
            i
            for i, (x, y) in enumerate(pts)
            if region.xmin <= x <= region.xmax and region.ymin <= y <= region.ymax
        }
        assert {e.payload for e in tree.window(region)} == expected


class TestNearest:
    def test_nearest_matches_brute_force(self):
        entries, pts = random_entries(200, seed=5)
        tree, _ = make_tree(entries, fanout=8)
        q = Point(321.0, 654.0)
        order = np.argsort([np.hypot(x - q.x, y - q.y) for x, y in pts])
        got = [e.payload for e in tree.nearest(q, k=5)]
        assert got == [int(i) for i in order[:5]]

    def test_nearest_k_larger_than_tree(self):
        entries, _ = random_entries(4)
        tree, _ = make_tree(entries)
        assert len(tree.nearest(Point(0, 0), k=10)) == 4

    def test_nearest_zero_k(self):
        entries, _ = random_entries(4)
        tree, _ = make_tree(entries)
        assert tree.nearest(Point(0, 0), k=0) == []


class TestIOAccounting:
    def test_window_charges_page_reads(self):
        entries, _ = random_entries(500, seed=2)
        disk = DiskManager(buffer_pages=0)  # no buffering: all physical
        file = disk.create_file("rt", category="rtree")
        tree = RTree(file, fanout=16)
        tree.bulk_load(entries)
        disk.stats.reset()
        list(tree.window(MBR(0, 0, 1000, 1000)))
        # A full-space window must touch at least every leaf except the
        # pinned root.
        assert disk.stats.physical_reads >= tree.num_pages - 1 - tree.height

    def test_root_is_pinned(self):
        entries, _ = random_entries(10)
        disk = DiskManager(buffer_pages=0)
        file = disk.create_file("rt", category="rtree")
        tree = RTree(file, fanout=32)  # single-node tree
        tree.bulk_load(entries)
        disk.stats.reset()
        list(tree.window(MBR(0, 0, 1000, 1000)))
        assert disk.stats.physical_reads == 0
