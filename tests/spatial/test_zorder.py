"""Tests for repro.spatial.zorder."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.spatial.geometry import Point
from repro.spatial.zorder import ZOrderCurve, deinterleave_bits, interleave_bits


class TestInterleave:
    def test_known_values(self):
        # x = 0b11, y = 0b00 -> bits at even positions
        assert interleave_bits(0b11, 0b00, bits=2) == 0b0101
        # x = 0b00, y = 0b11 -> bits at odd positions
        assert interleave_bits(0b00, 0b11, bits=2) == 0b1010

    def test_zero(self):
        assert interleave_bits(0, 0) == 0

    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    def test_roundtrip(self, ix, iy):
        code = interleave_bits(ix, iy)
        assert deinterleave_bits(code) == (ix, iy)

    @given(st.integers(0, 2**10 - 1), st.integers(0, 2**10 - 1))
    def test_monotone_in_each_coordinate_block(self, ix, iy):
        # Increasing either coordinate strictly increases the code when
        # the other is fixed at zero.
        if ix > 0:
            assert interleave_bits(ix, 0) > interleave_bits(ix - 1, 0)
        if iy > 0:
            assert interleave_bits(0, iy) > interleave_bits(0, iy - 1)


class TestZOrderCurve:
    def test_invalid_domain(self):
        with pytest.raises(ValueError):
            ZOrderCurve(0, 0, 0, 100)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            ZOrderCurve(bits=0)
        with pytest.raises(ValueError):
            ZOrderCurve(bits=40)

    def test_corners(self):
        curve = ZOrderCurve(0, 0, 100, 100, bits=8)
        assert curve.encode(0, 0) == 0
        assert curve.encode(100, 100) == (1 << 16) - 1

    def test_clamping_out_of_domain(self):
        curve = ZOrderCurve(0, 0, 100, 100, bits=8)
        assert curve.encode(-50, -50) == curve.encode(0, 0)
        assert curve.encode(500, 500) == curve.encode(100, 100)

    def test_encode_point_matches_encode(self):
        curve = ZOrderCurve()
        assert curve.encode_point(Point(123.0, 456.0)) == curve.encode(123.0, 456.0)

    @given(
        st.floats(0, 10000, allow_nan=False),
        st.floats(0, 10000, allow_nan=False),
    )
    def test_decode_is_near_inverse(self, x, y):
        curve = ZOrderCurve(bits=16)
        p = curve.decode(curve.encode(x, y))
        cell = 10000.0 / (2**16 - 1)
        assert abs(p.x - x) <= cell + 1e-9
        assert abs(p.y - y) <= cell + 1e-9

    def test_locality_on_average(self):
        """Close points get closer codes than far ones *on average*.

        Single pairs can straddle a quadrant boundary (the worst case of
        any space-filling curve), so the property is statistical.
        """
        import numpy as np

        curve = ZOrderCurve(bits=16)
        rng = np.random.default_rng(0)
        near_gaps, far_gaps = [], []
        for _ in range(300):
            x, y = rng.uniform(100, 9900, size=2)
            base = curve.encode(x, y)
            near_gaps.append(abs(base - curve.encode(x + 5, y + 5)))
            fx, fy = rng.uniform(0, 10000, size=2)
            far_gaps.append(abs(base - curve.encode(fx, fy)))
        assert np.median(near_gaps) < np.median(far_gaps) / 100
