"""Tests for the disk-based B+-tree against dict/sorted-list references."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.bplustree import BPlusTree
from repro.storage.pagefile import DiskManager


def make_tree(entries=None, **kw):
    disk = DiskManager(buffer_pages=1024)
    file = disk.create_file("bt", category="inverted")
    tree = BPlusTree(file, **kw)
    if entries is not None:
        tree.bulk_load(entries)
    return tree, disk


class TestBulkLoad:
    def test_empty(self):
        tree, _ = make_tree([])
        assert len(tree) == 0
        assert tree.search(5) is None
        assert list(tree.range(0, 100)) == []

    def test_single_entry(self):
        tree, _ = make_tree([(7, "seven")])
        assert tree.search(7) == "seven"
        assert tree.search(8) is None

    def test_requires_increasing_keys(self):
        tree, _ = make_tree()
        with pytest.raises(StorageError):
            tree.bulk_load([(2, "a"), (1, "b")])
        tree2, _ = make_tree()
        with pytest.raises(StorageError):
            tree2.bulk_load([(1, "a"), (1, "b")])

    def test_double_build_rejected(self):
        tree, _ = make_tree([(1, "a")])
        with pytest.raises(StorageError):
            tree.bulk_load([(2, "b")])

    def test_multi_level_tree(self):
        # Tiny entry sizes force realistic fanout; huge sizes force splits.
        entries = [(i, i * 10) for i in range(5000)]
        tree, _ = make_tree(entries, key_bytes=256, value_bytes=256)
        assert tree.height >= 3
        for key in (0, 1, 2499, 4998, 4999):
            assert tree.search(key) == key * 10

    def test_invalid_entry_bytes(self):
        disk = DiskManager()
        file = disk.create_file("bt", category="inverted")
        with pytest.raises(ValueError):
            BPlusTree(file, key_bytes=0)


class TestSearchAndRange:
    def test_search_all_keys(self):
        entries = [(i * 3, f"v{i}") for i in range(300)]
        tree, _ = make_tree(entries, key_bytes=64, value_bytes=64)
        for k, v in entries:
            assert tree.search(k) == v
        assert tree.search(1) is None
        assert tree.search(-5) is None
        assert tree.search(10**9) is None

    def test_range_matches_reference(self):
        entries = [(i * 2, i) for i in range(200)]
        tree, _ = make_tree(entries, key_bytes=64, value_bytes=64)
        got = list(tree.range(50, 120))
        expected = [(k, v) for k, v in entries if 50 <= k <= 120]
        assert got == expected

    def test_range_empty_interval(self):
        tree, _ = make_tree([(1, "a"), (5, "b")])
        assert list(tree.range(2, 4)) == []
        assert list(tree.range(10, 5)) == []

    def test_items_full_scan(self):
        entries = [(i, -i) for i in range(513)]
        tree, _ = make_tree(entries, key_bytes=32, value_bytes=32)
        assert list(tree.items()) == entries


class TestInsert:
    def test_insert_into_empty(self):
        tree, _ = make_tree()
        tree.insert(5, "five")
        assert tree.search(5) == "five"

    def test_insert_duplicate_rejected(self):
        tree, _ = make_tree([(5, "five")])
        with pytest.raises(StorageError):
            tree.insert(5, "again")

    def test_interleaved_inserts(self):
        tree, _ = make_tree([(i * 10, i) for i in range(50)], key_bytes=64,
                            value_bytes=64)
        for i in range(50):
            tree.insert(i * 10 + 5, -i)
        for i in range(50):
            assert tree.search(i * 10) == i
            assert tree.search(i * 10 + 5) == -i

    def test_inserts_force_splits(self):
        tree, _ = make_tree([], key_bytes=512, value_bytes=512)
        for i in range(200):
            tree.insert(i, i)
        assert tree.height >= 2
        assert [k for k, _ in tree.items()] == list(range(200))

    def test_descending_inserts(self):
        tree, _ = make_tree([], key_bytes=512, value_bytes=512)
        for i in reversed(range(150)):
            tree.insert(i, str(i))
        assert [k for k, _ in tree.items()] == list(range(150))
        assert tree.search(149) == "149"


class TestIOAccounting:
    def test_search_charges_descent_but_not_root(self):
        entries = [(i, i) for i in range(2000)]
        disk = DiskManager(buffer_pages=0)
        file = disk.create_file("bt", category="inverted")
        tree = BPlusTree(file, key_bytes=128, value_bytes=128)
        tree.bulk_load(entries)
        disk.stats.reset()
        tree.search(777)
        # Height - 1 reads: every level except the pinned root.
        assert disk.stats.physical_reads == tree.height - 1

    def test_unpinned_root_charges_full_height(self):
        entries = [(i, i) for i in range(2000)]
        disk = DiskManager(buffer_pages=0)
        file = disk.create_file("bt", category="inverted")
        tree = BPlusTree(file, key_bytes=128, value_bytes=128, pin_root=False)
        tree.bulk_load(entries)
        disk.stats.reset()
        tree.search(777)
        assert disk.stats.physical_reads == tree.height


@settings(max_examples=30, deadline=None)
@given(st.dictionaries(st.integers(0, 10_000), st.integers(), max_size=300))
def test_bulk_load_matches_dict(mapping):
    entries = sorted(mapping.items())
    tree, _ = make_tree(entries, key_bytes=64, value_bytes=64)
    for k, v in entries:
        assert tree.search(k) == v
    assert list(tree.items()) == entries


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(0, 1000), unique=True, max_size=150),
)
def test_insert_matches_sorted_reference(keys):
    tree, _ = make_tree([], key_bytes=256, value_bytes=256)
    for k in keys:
        tree.insert(k, k * 2)
    assert [k for k, _ in tree.items()] == sorted(keys)
    for k in keys:
        assert tree.search(k) == k * 2
