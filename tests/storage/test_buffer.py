"""Tests for the LRU buffer pool, including a model-based property test."""

from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.buffer import BufferPool


class TestBasics:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(capacity=-1)

    def test_first_access_is_miss(self):
        pool = BufferPool(capacity=4)
        assert pool.access(("f", 0)) is False

    def test_second_access_is_hit(self):
        pool = BufferPool(capacity=4)
        pool.access(("f", 0))
        assert pool.access(("f", 0)) is True

    def test_zero_capacity_never_hits(self):
        pool = BufferPool(capacity=0)
        pool.access(("f", 0))
        assert pool.access(("f", 0)) is False
        assert len(pool) == 0

    def test_lru_eviction_order(self):
        pool = BufferPool(capacity=2)
        pool.access(("f", 0))
        pool.access(("f", 1))
        pool.access(("f", 0))  # 0 becomes most recent
        pool.access(("f", 2))  # evicts 1
        assert ("f", 1) not in pool
        assert pool.access(("f", 0)) is True
        assert pool.access(("f", 1)) is False

    def test_evict_file(self):
        pool = BufferPool(capacity=8)
        pool.access(("a", 0))
        pool.access(("a", 1))
        pool.access(("b", 0))
        pool.evict_file("a")
        assert ("a", 0) not in pool
        assert ("b", 0) in pool

    def test_resize_down_evicts_lru(self):
        pool = BufferPool(capacity=4)
        for i in range(4):
            pool.access(("f", i))
        pool.resize(2)
        assert len(pool) == 2
        assert ("f", 3) in pool and ("f", 2) in pool
        with pytest.raises(ValueError):
            pool.resize(-3)

    def test_clear(self):
        pool = BufferPool(capacity=4)
        pool.access(("f", 0))
        pool.clear()
        assert len(pool) == 0
        assert pool.access(("f", 0)) is False


class _ReferenceLRU:
    """An independent reference implementation for model-based testing."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.data = OrderedDict()

    def access(self, key):
        if self.capacity == 0:
            return False
        if key in self.data:
            self.data.move_to_end(key)
            return True
        self.data[key] = None
        if len(self.data) > self.capacity:
            self.data.popitem(last=False)
        return False


@settings(max_examples=60, deadline=None)
@given(
    st.integers(0, 6),
    st.lists(st.tuples(st.sampled_from("ab"), st.integers(0, 9)), max_size=120),
)
def test_against_reference_model(capacity, accesses):
    pool = BufferPool(capacity=capacity)
    model = _ReferenceLRU(capacity)
    for key in accesses:
        assert pool.access(key) == model.access(key)
    assert len(pool) == len(model.data)
