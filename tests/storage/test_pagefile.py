"""Tests for the simulated disk: pages, files, I/O accounting."""

import pytest

from repro.errors import StorageError
from repro.storage.pagefile import PAGE_SIZE, DiskManager


class TestPageFile:
    def test_allocate_and_read(self):
        disk = DiskManager(buffer_pages=4)
        f = disk.create_file("data", category="inverted")
        p0 = f.allocate([1, 2, 3])
        p1 = f.allocate({"x": 1})
        assert f.read(p0) == [1, 2, 3]
        assert f.read(p1) == {"x": 1}
        assert f.num_pages == 2
        assert f.size_bytes == 2 * PAGE_SIZE

    def test_read_out_of_range(self):
        disk = DiskManager()
        f = disk.create_file("data", category="inverted")
        with pytest.raises(StorageError):
            f.read(0)

    def test_duplicate_file_rejected(self):
        disk = DiskManager()
        disk.create_file("data", category="x")
        with pytest.raises(StorageError):
            disk.create_file("data", category="x")

    def test_unknown_file_rejected(self):
        disk = DiskManager()
        with pytest.raises(StorageError):
            disk.get_file("nope")

    def test_drop_file_evicts_buffer(self):
        disk = DiskManager(buffer_pages=4)
        f = disk.create_file("data", category="x")
        p = f.allocate("payload")
        f.read(p)
        disk.drop_file("data")
        assert ("data", p) not in disk.buffer

    def test_read_unbuffered_charges_nothing(self):
        disk = DiskManager(buffer_pages=4)
        f = disk.create_file("data", category="x")
        p = f.allocate("payload")
        disk.stats.reset()
        assert f.read_unbuffered(p) == "payload"
        assert disk.stats.logical_reads == 0
        assert disk.stats.physical_reads == 0


class TestIOAccounting:
    def test_miss_then_hit(self):
        disk = DiskManager(buffer_pages=4)
        f = disk.create_file("data", category="network")
        p = f.allocate("payload")
        disk.stats.reset()
        f.read(p)
        f.read(p)
        assert disk.stats.logical_reads == 2
        assert disk.stats.physical_reads == 1
        assert disk.stats.buffer_hits == 1
        assert disk.stats.physical_by_category["network"] == 1

    def test_writes_counted(self):
        disk = DiskManager()
        f = disk.create_file("data", category="x")
        before = disk.stats.writes
        f.allocate("a")
        f.allocate("b")
        assert disk.stats.writes == before + 2

    def test_snapshot_delta(self):
        disk = DiskManager(buffer_pages=2)
        f = disk.create_file("data", category="rtree")
        pages = [f.allocate(i) for i in range(3)]
        before = disk.stats.snapshot()
        for p in pages:
            f.read(p)
        delta = disk.stats.snapshot() - before
        assert delta.logical_reads == 3
        assert delta.physical_reads == 3
        assert delta.physical_by_category == {"rtree": 3}

    def test_total_size_by_category(self):
        disk = DiskManager()
        a = disk.create_file("a", category="network")
        b = disk.create_file("b", category="inverted")
        a.allocate("x")
        b.allocate("y")
        b.allocate("z")
        assert disk.total_size_bytes("network") == PAGE_SIZE
        assert disk.total_size_bytes("inverted") == 2 * PAGE_SIZE
        assert disk.total_size_bytes() == 3 * PAGE_SIZE

    def test_clear_buffer_forces_misses(self):
        disk = DiskManager(buffer_pages=8)
        f = disk.create_file("data", category="x")
        p = f.allocate("payload")
        f.read(p)
        disk.clear_buffer()
        disk.stats.reset()
        f.read(p)
        assert disk.stats.physical_reads == 1
