"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["info", "MARS"])

    def test_index_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sk", "NA", "--index", "btree"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "SYN", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "num_objects" in out

    def test_generate(self, tmp_path, capsys):
        out_path = tmp_path / "snap.json"
        assert main(["generate", "SYN", "--scale", "0.05",
                     "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["format"] == "repro-dataset"
        assert payload["objects"]

    def test_sk(self, capsys):
        assert main([
            "sk", "SYN", "--scale", "0.05", "--queries", "5",
            "--keywords", "2", "--index", "sif",
        ]) == 0
        out = capsys.readouterr().out
        assert "avg_io" in out

    def test_diversify(self, capsys):
        assert main([
            "diversify", "SYN", "--scale", "0.05", "--queries", "3",
            "--keywords", "2", "--k", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "SEQ" in out and "COM" in out

    def test_diversify_ch_backend(self, tmp_path, capsys):
        path = tmp_path / "metrics.jsonl"
        assert main([
            "diversify", "SYN", "--scale", "0.05", "--queries", "3",
            "--keywords", "2", "--k", "4", "--distance-backend", "ch",
            "--metrics", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "SEQ" in out and "COM" in out
        records = [json.loads(line) for line in path.read_text().splitlines()]
        query_records = [r for r in records if r["type"] == "query"]
        assert query_records
        assert all(
            r["distance_backend"] == "ch" for r in query_records
        )
        build_records = [r for r in records if r["type"] == "ch_build"]
        assert len(build_records) == 1
        assert build_records[0]["preprocess_seconds"] > 0

    def test_explain_ch_backend(self, capsys):
        assert main([
            "explain", "SYN", "--scale", "0.05", "--keywords", "2",
            "--distance-backend", "ch",
        ]) == 0
        out = capsys.readouterr().out
        assert "distance backend: ch" in out

    def test_bad_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["diversify", "SYN", "--distance-backend", "astar"]
            )

    def test_metrics_file(self, tmp_path, capsys):
        path = tmp_path / "metrics.jsonl"
        assert main([
            "diversify", "SYN", "--scale", "0.05", "--queries", "2",
            "--keywords", "2", "--k", "4",
            "--metrics", str(path), "--distance-cache", "100000",
        ]) == 0
        records = [json.loads(line) for line in path.read_text().splitlines()]
        types = [r["type"] for r in records]
        assert "query" in types
        assert "workload" in types
        assert types[-1] == "snapshot"
        query_records = [r for r in records if r["type"] == "query"]
        assert len(query_records) == 4  # 2 queries x (SEQ, COM)
        for record in query_records:
            assert record["kind"].startswith("diversified/")
            assert "stages" in record
            assert "pairwise_dijkstras" in record
            assert set(record["distance_cache"]) == {
                "hits", "misses", "evictions",
            }
        err = capsys.readouterr().err
        assert "Shared distance cache" in err

    def test_compare(self, capsys):
        assert main([
            "compare", "SYN", "--scale", "0.05", "--queries", "4",
            "--keywords", "2",
        ]) == 0
        out = capsys.readouterr().out
        for label in ("IR", "IF", "SIF", "SIF-P"):
            assert label in out


class TestObservabilityFlags:
    def test_trace_and_prom_exports(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        prom_path = tmp_path / "metrics.prom"
        assert main([
            "diversify", "SYN", "--scale", "0.05", "--queries", "2",
            "--keywords", "2", "--k", "4",
            "--trace", str(trace_path), "--prom", str(prom_path),
        ]) == 0
        doc = json.loads(trace_path.read_text())
        assert doc["traceEvents"], "trace must contain events"
        names = {e["name"] for e in doc["traceEvents"]}
        assert "query.diversified" in names
        prom = prom_path.read_text()
        assert "# TYPE repro_query_count counter" in prom
        err = capsys.readouterr().err
        assert "perfetto" in err.lower()

    def test_output_paths_validated_at_parse_time(self, tmp_path):
        missing = tmp_path / "no" / "such" / "dir" / "out.json"
        for flag in ("--trace", "--prom", "--metrics"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(
                    ["sk", "SYN", flag, str(missing)]
                )

    def test_metrics_sink_closed_when_query_raises(self, tmp_path,
                                                   monkeypatch):
        import repro.cli as cli_mod
        from repro.workloads import runner

        path = tmp_path / "metrics.jsonl"
        captured = {}
        original = cli_mod._attach_metrics_sink

        def capture_sink(db, args):
            captured["sink"] = original(db, args)
            return captured["sink"]

        def explode(*args, **kwargs):
            raise RuntimeError("query blew up")

        monkeypatch.setattr(cli_mod, "_attach_metrics_sink", capture_sink)
        monkeypatch.setattr(runner, "run_sk_workload", explode)
        monkeypatch.setattr(cli_mod, "run_sk_workload", explode)
        with pytest.raises(RuntimeError):
            main([
                "sk", "SYN", "--scale", "0.05", "--queries", "2",
                "--keywords", "2", "--metrics", str(path),
            ])
        assert captured["sink"].closed


class TestConcurrentObservability:
    def test_trace_with_workers_merges_lanes(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main([
            "sk", "SYN", "--scale", "0.05", "--queries", "8",
            "--keywords", "2", "--workers", "4",
            "--trace", str(trace_path),
        ]) == 0
        err = capsys.readouterr().err
        assert "serial-only" not in err
        assert "worker lane" in err
        doc = json.loads(trace_path.read_text())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta and all(
            e["args"]["name"].startswith("worker") for e in meta
        )
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert sum(1 for e in spans if e["name"] == "query.sk") == 8
        assert {e["tid"] for e in spans} <= {e["tid"] for e in meta}

    def test_prom_includes_cache_gauges(self, tmp_path):
        prom_path = tmp_path / "metrics.prom"
        assert main([
            "diversify", "SYN", "--scale", "0.05", "--queries", "2",
            "--keywords", "2", "--k", "4",
            "--distance-cache", "100000", "--prom", str(prom_path),
        ]) == 0
        prom = prom_path.read_text()
        assert "# TYPE repro_distance_cache_hit_rate gauge" in prom
        assert "# TYPE repro_buffer_pool_evictions gauge" in prom


class TestSlowLogCommand:
    def test_capture_and_render(self, tmp_path, capsys):
        log_path = tmp_path / "slow.jsonl"
        trace_path = tmp_path / "trace.json"
        assert main([
            "diversify", "SYN", "--scale", "0.05", "--queries", "2",
            "--keywords", "2", "--k", "4", "--workers", "2",
            "--slowlog", str(log_path), "--trace", str(trace_path),
        ]) == 0
        err = capsys.readouterr().err
        assert "Slow-query log: captured 4 of 4 queries" in err
        records = [
            json.loads(line) for line in log_path.read_text().splitlines()
        ]
        assert all(r["type"] == "slow_query" for r in records)
        assert all(r["trace"] is not None for r in records)
        assert all(r["label"] for r in records)

        assert main(["slowlog", str(log_path)]) == 0
        out = capsys.readouterr().out
        assert "SLOW QUERY #1" in out
        assert "diversified query" in out

    def test_threshold_filters(self, tmp_path, capsys):
        log_path = tmp_path / "slow.jsonl"
        assert main([
            "sk", "SYN", "--scale", "0.05", "--queries", "3",
            "--keywords", "2",
            "--slow-ms", "60000", "--slowlog", str(log_path),
        ]) == 0
        err = capsys.readouterr().err
        assert "captured 0 of 3" in err
        assert main(["slowlog", str(log_path)]) == 0
        assert "no slow-query records" in capsys.readouterr().out

    def test_missing_file_fails(self, tmp_path, capsys):
        assert main(["slowlog", str(tmp_path / "absent.jsonl")]) == 1


class TestSLOGate:
    def _spec(self, tmp_path, threshold):
        spec = {
            "name": "serving",
            "rules": [
                {"name": "p95 latency", "kind": "histogram_quantile",
                 "metric": "query.wall_seconds", "op": "<=",
                 "threshold": threshold, "quantile": 95},
                {"name": "ran queries", "kind": "counter",
                 "metric": "query.count", "op": ">=", "threshold": 1},
            ],
        }
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(spec))
        return path

    def test_passing_slo(self, tmp_path, capsys):
        path = self._spec(tmp_path, threshold=3600.0)
        assert main([
            "sk", "SYN", "--scale", "0.05", "--queries", "3",
            "--keywords", "2", "--slo", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "PASS  p95 latency" in out

    def test_violated_slo_fails_command(self, tmp_path, capsys):
        path = self._spec(tmp_path, threshold=0.0)
        assert main([
            "sk", "SYN", "--scale", "0.05", "--queries", "3",
            "--keywords", "2", "--slo", str(path),
        ]) == 1
        captured = capsys.readouterr()
        assert "FAIL  p95 latency" in captured.out
        assert "SLO VIOLATED" in captured.err


class TestBenchCompareCommand:
    def _write(self, path, p95_ms, qps):
        path.write_text(json.dumps({
            "schema": "repro-bench-trajectory/v1",
            "artifact": path.name,
            "figures": {
                "fig-6": {
                    "title": "Fig 6",
                    "headline": {"p95_ms": p95_ms, "qps": qps, "k": 6},
                    "rows": [],
                },
            },
        }))

    def test_identical_files_pass_the_gate(self, tmp_path, capsys):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        self._write(old, 10.0, 100.0)
        self._write(new, 10.0, 100.0)
        assert main([
            "bench", "compare", str(old), str(new),
            "--fail-on-regression", "20",
        ]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_injected_regression_fails_the_gate(self, tmp_path, capsys):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        self._write(old, 10.0, 100.0)
        self._write(new, 12.5, 100.0)  # +25% p95 — past the 20% gate
        assert main([
            "bench", "compare", str(old), str(new),
            "--fail-on-regression", "20",
        ]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "gate FAILED" in captured.err

    def test_report_only_without_gate(self, tmp_path, capsys):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        self._write(old, 10.0, 100.0)
        self._write(new, 12.5, 100.0)
        assert main(["bench", "compare", str(old), str(new)]) == 0

    def test_bad_schema_is_an_error(self, tmp_path, capsys):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        old.write_text(json.dumps({"schema": "other"}))
        self._write(new, 10.0, 100.0)
        assert main(["bench", "compare", str(old), str(new)]) == 2


class TestExplainCommand:
    def test_explain_diversified(self, capsys, tmp_path):
        trace_path = tmp_path / "explain.json"
        assert main([
            "explain", "SYN", "--scale", "0.05", "--method", "com",
            "--keywords", "1", "--k", "4", "--delta-max", "4000",
            "--trace", str(trace_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN" in out
        assert "COM" in out
        doc = json.loads(trace_path.read_text())
        assert doc["traceEvents"], "explain --trace must emit events"

    def test_explain_sk(self, capsys):
        assert main([
            "explain", "SYN", "--scale", "0.05", "--method", "sk",
            "--keywords", "2", "--index", "sif-p",
        ]) == 0
        out = capsys.readouterr().out
        assert "SK range query" in out
        assert "signature filter [SIF-P]" in out
        assert "wall clock by top-level span" in out

    def test_explain_slow_verdict(self, capsys):
        assert main([
            "explain", "SYN", "--scale", "0.05", "--method", "sk",
            "--keywords", "2", "--slow-ms", "60000",
        ]) == 0
        out = capsys.readouterr().out
        assert "slow-query verdict: OK — " in out
        assert main([
            "explain", "SYN", "--scale", "0.05", "--method", "sk",
            "--keywords", "2", "--slow-ms", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "slow-query verdict: SLOW — " in out


class TestLoadtestCommand:
    def _live_spec(self, tmp_path, threshold):
        spec = {
            "name": "live",
            "rules": [
                {"name": "observed-p95", "kind": "histogram_quantile",
                 "metric": "loadtest.latency_seconds", "op": "<=",
                 "threshold": threshold, "quantile": 95},
            ],
        }
        path = tmp_path / "live-slo.json"
        path.write_text(json.dumps(spec))
        return path

    def test_loadtest_runs_and_reports(self, capsys):
        assert main([
            "loadtest", "SYN", "--scale", "0.05", "--queries", "10",
            "--keywords", "2", "--k", "4", "--workers", "2",
            "--qps", "30", "--duration", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "offered_qps" in out
        assert "achieved_qps" in out
        assert "max_lag_ms" in out

    def test_loadtest_live_slo_pass(self, tmp_path, capsys):
        spec = self._live_spec(tmp_path, threshold=30.0)
        assert main([
            "loadtest", "SYN", "--scale", "0.05", "--queries", "10",
            "--keywords", "2", "--k", "4", "--workers", "2",
            "--qps", "30", "--duration", "0.5", "--slo", str(spec),
        ]) == 0
        captured = capsys.readouterr()
        assert "PASS" in captured.out
        assert "Live SLO [live]" in captured.err

    def test_loadtest_live_slo_breach_fails(self, tmp_path, capsys):
        spec = self._live_spec(tmp_path, threshold=0.0)
        assert main([
            "loadtest", "SYN", "--scale", "0.05", "--queries", "10",
            "--keywords", "2", "--k", "4", "--workers", "2",
            "--qps", "30", "--duration", "0.5", "--slo", str(spec),
        ]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "live SLO gate FAILED" in captured.err

    def test_loadtest_writes_profile(self, tmp_path, capsys):
        out_path = tmp_path / "profile.folded"
        assert main([
            "loadtest", "SYN", "--scale", "0.05", "--queries", "10",
            "--keywords", "2", "--k", "4", "--workers", "2",
            "--qps", "30", "--duration", "0.5",
            "--profile-out", str(out_path), "--profile-hz", "200",
        ]) == 0
        err = capsys.readouterr().err
        assert "profile samples" in err
        for line in out_path.read_text().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert stack and int(count) > 0

    def test_loadtest_with_telemetry_port(self, capsys):
        # Port 0 binds an ephemeral port; the run must start/stop the
        # server cleanly around the workload.
        assert main([
            "loadtest", "SYN", "--scale", "0.05", "--queries", "10",
            "--keywords", "2", "--k", "4", "--workers", "2",
            "--qps", "30", "--duration", "0.5", "--telemetry-port", "0",
        ]) == 0
        err = capsys.readouterr().err
        assert "Telemetry: http://127.0.0.1:" in err


class TestProfileCommand:
    def test_renders_folded_file(self, tmp_path, capsys):
        folded = tmp_path / "p.folded"
        folded.write_text(
            "SEQ;a.py:f;b.py:g 60\nCOM;a.py:f;c.py:h 40\n"
        )
        assert main(["profile", str(folded), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "by plan label:" in out
        assert "SEQ" in out and "COM" in out

    def test_missing_file_fails(self, tmp_path):
        assert main(["profile", str(tmp_path / "absent.folded")]) == 1

    def test_empty_file(self, tmp_path, capsys):
        folded = tmp_path / "empty.folded"
        folded.write_text("")
        assert main(["profile", str(folded)]) == 0
        assert "no profile samples" in capsys.readouterr().out


class TestTelemetryFlag:
    def test_workload_with_telemetry_port(self, capsys):
        assert main([
            "sk", "SYN", "--scale", "0.05", "--queries", "3",
            "--keywords", "2", "--telemetry-port", "0",
        ]) == 0
        err = capsys.readouterr().err
        assert "Telemetry: http://127.0.0.1:" in err


class TestFlagValidation:
    def test_rate_flags_rejected_at_parse_time(self):
        bad = [
            ["loadtest", "SYN", "--qps", "0"],
            ["loadtest", "SYN", "--qps", "-5"],
            ["loadtest", "SYN", "--duration", "0"],
            ["loadtest", "SYN", "--profile-hz", "0"],
            ["loadtest", "SYN", "--profile-hz", "nan"],
            ["loadtest", "SYN", "--telemetry-port", "70000"],
            ["diversify", "SYN", "--shadow-rate", "0"],
            ["diversify", "SYN", "--shadow-rate", "1.5"],
        ]
        for argv in bad:
            with pytest.raises(SystemExit) as err:
                build_parser().parse_args(argv)
            assert err.value.code == 2, argv

    def test_valid_rates_accepted(self):
        args = build_parser().parse_args([
            "loadtest", "SYN", "--qps", "12.5", "--duration", "0.5",
            "--profile-hz", "97",
        ])
        assert args.qps == 12.5
        args = build_parser().parse_args([
            "diversify", "SYN", "--shadow-backend", "ch",
            "--shadow-rate", "0.25",
        ])
        assert args.shadow_rate == 0.25


class TestFlightRecorderCLI:
    def test_record_then_replay_roundtrip(self, tmp_path, capsys):
        journal = tmp_path / "flight.jsonl"
        assert main([
            "diversify", "SYN", "--scale", "0.05", "--queries", "3",
            "--keywords", "2", "--k", "4", "--record", str(journal),
        ]) == 0
        err = capsys.readouterr().err
        assert "Flight recorder: captured 6 queries" in err
        lines = [
            json.loads(line) for line in journal.read_text().splitlines()
        ]
        assert lines[0]["type"] == "flight_header"
        assert lines[0]["profile"] == "SYN"

        assert main(["replay", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "verdict: PASS — zero divergences" in out

    def test_replay_with_backend_override(self, tmp_path, capsys):
        journal = tmp_path / "flight.jsonl"
        assert main([
            "diversify", "SYN", "--scale", "0.05", "--queries", "2",
            "--keywords", "2", "--k", "4", "--record", str(journal),
        ]) == 0
        assert main([
            "replay", str(journal), "--backend", "ch",
            "--scoring", "scalar", "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "backend=ch" in out
        assert "scoring=scalar" in out
        assert "verdict: PASS" in out

    def test_replay_catches_tampered_journal(self, tmp_path, capsys):
        journal = tmp_path / "flight.jsonl"
        assert main([
            "diversify", "SYN", "--scale", "0.05", "--queries", "2",
            "--keywords", "2", "--k", "4", "--record", str(journal),
        ]) == 0
        lines = journal.read_text().splitlines()
        tampered = []
        for line in lines:
            record = json.loads(line)
            if record["type"] == "flight" and record["sequence"] == 0:
                record["digest"] = "f" * 16
            tampered.append(json.dumps(record))
        journal.write_text("\n".join(tampered) + "\n")
        assert main(["replay", str(journal)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "DIVERGENCE" in out

    def test_replay_missing_file(self, tmp_path):
        assert main(["replay", str(tmp_path / "absent.jsonl")]) == 1

    def test_replay_headerless_journal(self, tmp_path, capsys):
        path = tmp_path / "bare.jsonl"
        path.write_text(json.dumps({"type": "flight"}) + "\n")
        assert main(["replay", str(path)]) == 2
        assert "no flight_header" in capsys.readouterr().err

    def test_update_workload_records_and_replays(self, tmp_path, capsys):
        journal = tmp_path / "flight.jsonl"
        assert main([
            "update", "SYN", "--scale", "0.05", "--queries", "3",
            "--keywords", "2", "--record", str(journal),
        ]) == 0
        types = {
            json.loads(line)["type"]
            for line in journal.read_text().splitlines()
        }
        assert "flight_update" in types
        assert main(["replay", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "updates re-applied" in out
        assert "verdict: PASS" in out

    def test_shadow_backend_audit_passes(self, capsys):
        assert main([
            "diversify", "SYN", "--scale", "0.05", "--queries", "2",
            "--keywords", "2", "--k", "4",
            "--shadow-backend", "ch", "--shadow-rate", "1.0",
        ]) == 0
        err = capsys.readouterr().err
        assert "Shadow [ch]: 4 shadow executions, 0 divergence(s)" in err

    def test_slowlog_records_carry_digest(self, tmp_path, capsys):
        log_path = tmp_path / "slow.jsonl"
        journal = tmp_path / "flight.jsonl"
        assert main([
            "diversify", "SYN", "--scale", "0.05", "--queries", "2",
            "--keywords", "2", "--k", "4",
            "--slowlog", str(log_path), "--record", str(journal),
        ]) == 0
        capsys.readouterr()
        records = [
            json.loads(line) for line in log_path.read_text().splitlines()
        ]
        assert records and all(r.get("digest") for r in records)
        assert main(["slowlog", str(log_path)]) == 0
        assert "[digest " in capsys.readouterr().out

    def test_explain_renders_digest(self, capsys):
        assert main([
            "explain", "SYN", "--scale", "0.05", "--method", "com",
            "--keywords", "2", "--k", "4",
        ]) == 0
        assert "result digest: " in capsys.readouterr().out


class TestSlowlogToleranceCommand:
    def test_skips_malformed_lines_and_renders_breaches(
        self, tmp_path, capsys
    ):
        path = tmp_path / "slow.jsonl"
        breach = {
            "type": "slo_breach", "spec": "live",
            "window": {"window_seconds": 10.0, "count": 5, "qps": 0.5,
                       "error_rate": 0.0},
            "failed": [{"rule": {"name": "p95", "metric": "m",
                                 "op": "<=", "threshold": 0.1},
                        "value": 0.5}],
        }
        record = {
            "type": "slow_query", "seq": 1, "label": "L",
            "wall_seconds": 0.01, "nodes_accessed": 5,
            "exceeded": ["latency"], "worker": "w",
            "stats": {"stage_seconds": {}},
        }
        path.write_text(
            json.dumps(record) + "\n"
            + json.dumps(breach) + "\n"
            + '{"truncated": \n'
        )
        assert main(["slowlog", str(path)]) == 0
        captured = capsys.readouterr()
        assert "SLOW QUERY #1" in captured.out
        assert "SLO BREACH" in captured.out
        assert "skipped 1 malformed line(s)" in captured.err
