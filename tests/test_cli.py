"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["info", "MARS"])

    def test_index_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sk", "NA", "--index", "btree"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "SYN", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "num_objects" in out

    def test_generate(self, tmp_path, capsys):
        out_path = tmp_path / "snap.json"
        assert main(["generate", "SYN", "--scale", "0.05",
                     "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["format"] == "repro-dataset"
        assert payload["objects"]

    def test_sk(self, capsys):
        assert main([
            "sk", "SYN", "--scale", "0.05", "--queries", "5",
            "--keywords", "2", "--index", "sif",
        ]) == 0
        out = capsys.readouterr().out
        assert "avg_io" in out

    def test_diversify(self, capsys):
        assert main([
            "diversify", "SYN", "--scale", "0.05", "--queries", "3",
            "--keywords", "2", "--k", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "SEQ" in out and "COM" in out

    def test_metrics_file(self, tmp_path, capsys):
        path = tmp_path / "metrics.jsonl"
        assert main([
            "diversify", "SYN", "--scale", "0.05", "--queries", "2",
            "--keywords", "2", "--k", "4",
            "--metrics", str(path), "--distance-cache", "100000",
        ]) == 0
        records = [json.loads(line) for line in path.read_text().splitlines()]
        types = [r["type"] for r in records]
        assert "query" in types
        assert "workload" in types
        assert types[-1] == "snapshot"
        query_records = [r for r in records if r["type"] == "query"]
        assert len(query_records) == 4  # 2 queries x (SEQ, COM)
        for record in query_records:
            assert record["kind"].startswith("diversified/")
            assert "stages" in record
            assert "pairwise_dijkstras" in record
            assert set(record["distance_cache"]) == {
                "hits", "misses", "evictions",
            }
        err = capsys.readouterr().err
        assert "Shared distance cache" in err

    def test_compare(self, capsys):
        assert main([
            "compare", "SYN", "--scale", "0.05", "--queries", "4",
            "--keywords", "2",
        ]) == 0
        out = capsys.readouterr().out
        for label in ("IR", "IF", "SIF", "SIF-P"):
            assert label in out


class TestObservabilityFlags:
    def test_trace_and_prom_exports(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        prom_path = tmp_path / "metrics.prom"
        assert main([
            "diversify", "SYN", "--scale", "0.05", "--queries", "2",
            "--keywords", "2", "--k", "4",
            "--trace", str(trace_path), "--prom", str(prom_path),
        ]) == 0
        doc = json.loads(trace_path.read_text())
        assert doc["traceEvents"], "trace must contain events"
        names = {e["name"] for e in doc["traceEvents"]}
        assert "query.diversified" in names
        prom = prom_path.read_text()
        assert "# TYPE repro_query_count counter" in prom
        err = capsys.readouterr().err
        assert "perfetto" in err.lower()

    def test_output_paths_validated_at_parse_time(self, tmp_path):
        missing = tmp_path / "no" / "such" / "dir" / "out.json"
        for flag in ("--trace", "--prom", "--metrics"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(
                    ["sk", "SYN", flag, str(missing)]
                )

    def test_metrics_sink_closed_when_query_raises(self, tmp_path,
                                                   monkeypatch):
        import repro.cli as cli_mod
        from repro.workloads import runner

        path = tmp_path / "metrics.jsonl"
        captured = {}
        original = cli_mod._attach_metrics_sink

        def capture_sink(db, args):
            captured["sink"] = original(db, args)
            return captured["sink"]

        def explode(*args, **kwargs):
            raise RuntimeError("query blew up")

        monkeypatch.setattr(cli_mod, "_attach_metrics_sink", capture_sink)
        monkeypatch.setattr(runner, "run_sk_workload", explode)
        monkeypatch.setattr(cli_mod, "run_sk_workload", explode)
        with pytest.raises(RuntimeError):
            main([
                "sk", "SYN", "--scale", "0.05", "--queries", "2",
                "--keywords", "2", "--metrics", str(path),
            ])
        assert captured["sink"].closed


class TestExplainCommand:
    def test_explain_diversified(self, capsys, tmp_path):
        trace_path = tmp_path / "explain.json"
        assert main([
            "explain", "SYN", "--scale", "0.05", "--method", "com",
            "--keywords", "1", "--k", "4", "--delta-max", "4000",
            "--trace", str(trace_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN" in out
        assert "COM" in out
        doc = json.loads(trace_path.read_text())
        assert doc["traceEvents"], "explain --trace must emit events"

    def test_explain_sk(self, capsys):
        assert main([
            "explain", "SYN", "--scale", "0.05", "--method", "sk",
            "--keywords", "2", "--index", "sif-p",
        ]) == 0
        out = capsys.readouterr().out
        assert "SK range query" in out
        assert "signature filter [SIF-P]" in out
