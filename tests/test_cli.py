"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["info", "MARS"])

    def test_index_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sk", "NA", "--index", "btree"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "SYN", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "num_objects" in out

    def test_generate(self, tmp_path, capsys):
        out_path = tmp_path / "snap.json"
        assert main(["generate", "SYN", "--scale", "0.05",
                     "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["format"] == "repro-dataset"
        assert payload["objects"]

    def test_sk(self, capsys):
        assert main([
            "sk", "SYN", "--scale", "0.05", "--queries", "5",
            "--keywords", "2", "--index", "sif",
        ]) == 0
        out = capsys.readouterr().out
        assert "avg_io" in out

    def test_diversify(self, capsys):
        assert main([
            "diversify", "SYN", "--scale", "0.05", "--queries", "3",
            "--keywords", "2", "--k", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "SEQ" in out and "COM" in out

    def test_metrics_file(self, tmp_path, capsys):
        path = tmp_path / "metrics.jsonl"
        assert main([
            "diversify", "SYN", "--scale", "0.05", "--queries", "2",
            "--keywords", "2", "--k", "4",
            "--metrics", str(path), "--distance-cache", "100000",
        ]) == 0
        records = [json.loads(line) for line in path.read_text().splitlines()]
        types = [r["type"] for r in records]
        assert "query" in types
        assert "workload" in types
        assert types[-1] == "snapshot"
        query_records = [r for r in records if r["type"] == "query"]
        assert len(query_records) == 4  # 2 queries x (SEQ, COM)
        for record in query_records:
            assert record["kind"].startswith("diversified/")
            assert "stages" in record
            assert "pairwise_dijkstras" in record
            assert set(record["distance_cache"]) == {
                "hits", "misses", "evictions",
            }
        err = capsys.readouterr().err
        assert "Shared distance cache" in err

    def test_compare(self, capsys):
        assert main([
            "compare", "SYN", "--scale", "0.05", "--queries", "4",
            "--keywords", "2",
        ]) == 0
        out = capsys.readouterr().out
        for label in ("IR", "IF", "SIF", "SIF-P"):
            assert label in out
