"""Tests for vocabulary and frequency-weighted sampling."""

import numpy as np
import pytest

from repro.text.vocabulary import Vocabulary, make_term_names


class TestMakeTermNames:
    def test_names(self):
        assert make_term_names(3) == ["t0", "t1", "t2"]
        assert make_term_names(2, prefix="kw") == ["kw0", "kw1"]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            make_term_names(0)


class TestVocabulary:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary({})

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary({"a": 0})

    def test_rank_order(self):
        v = Vocabulary({"rare": 1, "common": 10, "mid": 5})
        assert list(v.terms) == ["common", "mid", "rare"]
        assert v.most_frequent(2) == ["common", "mid"]

    def test_frequency_and_probability(self):
        v = Vocabulary({"a": 3, "b": 1})
        assert v.frequency("a") == 3
        assert v.probability("a") == pytest.approx(0.75)
        assert "a" in v and "z" not in v
        assert len(v) == 2

    def test_from_corpus(self):
        v = Vocabulary.from_corpus([{"a", "b"}, {"a"}, {"a", "c"}])
        assert v.frequency("a") == 3
        assert v.frequency("b") == 1

    def test_items(self):
        v = Vocabulary({"a": 2, "b": 1})
        assert list(v.items()) == [("a", 2), ("b", 1)]

    def test_sampling_is_frequency_biased(self):
        v = Vocabulary({"hot": 1000, "cold": 1})
        rng = np.random.default_rng(0)
        draws = [v.sample_terms(1, rng)[0] for _ in range(200)]
        assert draws.count("hot") > 180

    def test_sample_distinct(self):
        v = Vocabulary({f"t{i}": i + 1 for i in range(10)})
        rng = np.random.default_rng(1)
        terms = v.sample_terms(5, rng)
        assert len(terms) == len(set(terms)) == 5

    def test_sample_more_than_vocab(self):
        v = Vocabulary({"a": 1, "b": 2})
        rng = np.random.default_rng(2)
        assert sorted(v.sample_terms(10, rng)) == ["a", "b"]

    def test_sample_with_replacement(self):
        v = Vocabulary({"a": 1})
        rng = np.random.default_rng(3)
        assert v.sample_terms(3, rng, distinct=False) == ["a", "a", "a"]
