"""Tests for the Zipf sampler."""

import numpy as np
import pytest

from repro.text.zipf import ZipfSampler, zipf_probabilities


class TestProbabilities:
    def test_normalised(self):
        p = zipf_probabilities(100, 1.1)
        assert p.sum() == pytest.approx(1.0)
        assert (p > 0).all()

    def test_monotone_decreasing(self):
        p = zipf_probabilities(50, 1.0)
        assert (np.diff(p) < 0).all()

    def test_zero_skew_is_uniform(self):
        p = zipf_probabilities(10, 0.0)
        assert np.allclose(p, 0.1)

    def test_higher_skew_concentrates_mass(self):
        low = zipf_probabilities(100, 0.9)
        high = zipf_probabilities(100, 1.3)
        assert high[0] > low[0]
        assert high[:5].sum() > low[:5].sum()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ValueError):
            zipf_probabilities(10, -0.5)


class TestSampler:
    def test_empty_vocab_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler([], z=1.0)

    def test_sample_counts(self):
        s = ZipfSampler([f"t{i}" for i in range(20)], z=1.0, seed=0)
        assert len(s.sample(7)) == 7
        assert s.vocabulary_size == 20

    def test_sample_distinct_unique(self):
        s = ZipfSampler([f"t{i}" for i in range(20)], z=1.1, seed=1)
        got = s.sample_distinct(8)
        assert len(got) == len(set(got)) == 8

    def test_sample_distinct_capped_at_vocab(self):
        s = ZipfSampler(["a", "b", "c"], z=1.0, seed=2)
        assert sorted(s.sample_distinct(10)) == ["a", "b", "c"]

    def test_determinism_per_seed(self):
        a = ZipfSampler([f"t{i}" for i in range(30)], z=1.0, seed=5)
        b = ZipfSampler([f"t{i}" for i in range(30)], z=1.0, seed=5)
        assert a.sample(20) == b.sample(20)

    def test_skew_shows_in_samples(self):
        s = ZipfSampler([f"t{i}" for i in range(100)], z=1.3, seed=3)
        draws = s.sample(3000)
        top = draws.count("t0")
        tail = draws.count("t99")
        assert top > 50 * max(tail, 1)
