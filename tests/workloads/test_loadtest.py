"""Open-loop load-driver tests: pacing, latency semantics, live gate."""

from __future__ import annotations

import re
import threading
import urllib.request

import pytest

from repro.errors import QueryError
from repro.obs.slo import SLORule, SLOSpec
from repro.workloads import WorkloadConfig, generate_diversified_queries
from repro.workloads.loadtest import (
    OBSERVED_STREAM,
    LoadTestConfig,
    LoadTestReport,
    run_loadtest,
)


@pytest.fixture()
def queries(tiny_db):
    return generate_diversified_queries(
        tiny_db, WorkloadConfig(num_queries=20, k=3, seed=17)
    )


def spec_with_p95(threshold: float) -> SLOSpec:
    return SLOSpec(
        name="gate",
        rules=[
            SLORule(
                name="observed-p95",
                kind="histogram_quantile",
                metric=OBSERVED_STREAM,
                op="<=",
                threshold=threshold,
                quantile=95,
            ),
        ],
    )


class TestConfig:
    def test_total_queries(self):
        assert LoadTestConfig(qps=25.0, duration_seconds=2.0).total_queries == 50
        assert LoadTestConfig(qps=0.5, duration_seconds=1.0).total_queries == 1

    def test_validation(self):
        with pytest.raises(QueryError):
            LoadTestConfig(qps=0)
        with pytest.raises(QueryError):
            LoadTestConfig(duration_seconds=0)
        with pytest.raises(QueryError):
            LoadTestConfig(workers=0)
        with pytest.raises(QueryError):
            LoadTestConfig(method="nope")

    def test_empty_queries_rejected(self, tiny_db, tiny_indexes):
        with pytest.raises(QueryError):
            run_loadtest(
                tiny_db, tiny_indexes["sif"], [], LoadTestConfig()
            )


class TestReport:
    def test_percentiles_from_intended_time(self):
        report = LoadTestReport(label="x", offered_qps=10.0, workers=1)
        report.latencies = [0.1, 0.2, 0.3, 0.4]
        report.service_latencies = [0.01, 0.02, 0.03, 0.04]
        assert report.percentile(50) == pytest.approx(0.25)
        assert report.percentile(50, service=True) == pytest.approx(0.025)

    def test_slo_gate_defaults_open(self):
        report = LoadTestReport(label="x", offered_qps=1.0, workers=1)
        assert report.slo_passed is True
        report.slo = {"passed": False}
        assert report.slo_passed is False


class TestRunLoadtest:
    def test_sustains_offered_qps(self, tiny_db, tiny_indexes, queries):
        config = LoadTestConfig(qps=40.0, duration_seconds=1.5, workers=4)
        report = run_loadtest(
            tiny_db, tiny_indexes["sif"], queries, config, label="pace"
        )
        assert report.sent == config.total_queries
        assert report.completed == report.sent
        assert report.errors == 0
        # Open loop: wall clock tracks the schedule, so achieved ~= offered.
        assert report.achieved_qps == pytest.approx(40.0, rel=0.25)
        assert report.wall_clock_seconds >= 1.0

    def test_latency_measured_from_intended_time(
        self, tiny_db, tiny_indexes, queries
    ):
        """Coordinated-omission safety: queue wait counts as latency.

        One worker + a rate the tiny database can serve only by
        queueing ⇒ observed latency must exceed pure service time.
        """
        config = LoadTestConfig(qps=150.0, duration_seconds=0.5, workers=1)
        report = run_loadtest(
            tiny_db, tiny_indexes["sif"], queries, config, label="queue"
        )
        assert report.completed == config.total_queries
        # Every latency >= its own service time; in aggregate the tail
        # observed latency carries the queueing delay on top.
        assert report.percentile(95) >= report.percentile(95, service=True)
        assert max(report.latencies) >= max(report.service_latencies)

    def test_live_slo_pass(self, tiny_db, tiny_indexes, queries):
        config = LoadTestConfig(qps=30.0, duration_seconds=1.0, workers=4)
        report = run_loadtest(
            tiny_db, tiny_indexes["sif"], queries, config,
            slo_spec=spec_with_p95(30.0), label="pass",
        )
        assert report.slo is not None
        assert report.slo_passed is True
        assert report.slo["breach_windows"] == 0
        assert report.row()["slo"] == "PASS"
        # The monitor is uninstalled after the run.
        assert tiny_db.live_slo is None

    def test_live_slo_injected_breach(self, tiny_db, tiny_indexes, queries):
        """An impossible threshold must fail the gate and count breaches."""
        config = LoadTestConfig(qps=30.0, duration_seconds=1.0, workers=4)
        report = run_loadtest(
            tiny_db, tiny_indexes["sif"], queries, config,
            slo_spec=spec_with_p95(0.0), label="breach",
        )
        assert report.slo_passed is False
        assert report.slo["breach_windows"] >= 1
        assert report.row()["slo"] == "FAIL"
        assert tiny_db.metrics.counters()["slo.breaches"] >= 1
        assert tiny_db.live_slo is None

    def test_observed_stream_feeds_rollup(self, tiny_db, tiny_indexes, queries):
        config = LoadTestConfig(qps=30.0, duration_seconds=0.5, workers=2)
        run_loadtest(tiny_db, tiny_indexes["sif"], queries, config)
        snap = tiny_db.rollup.snapshot()
        assert OBSERVED_STREAM in snap.streams
        assert snap.streams[OBSERVED_STREAM]["count"] >= 1

    def test_sk_method(self, tiny_db, tiny_indexes):
        from repro.workloads import generate_sk_queries

        sk_queries = generate_sk_queries(
            tiny_db, WorkloadConfig(num_queries=10, seed=23)
        )
        config = LoadTestConfig(
            qps=30.0, duration_seconds=0.5, workers=2, method="sk"
        )
        report = run_loadtest(
            tiny_db, tiny_indexes["sif"], sk_queries, config
        )
        assert report.completed == config.total_queries
        assert report.errors == 0

    def test_summary_record_emitted(self, tiny_db, tiny_indexes, queries):
        from repro.obs.sinks import InMemorySink

        sink = InMemorySink()
        tiny_db.metrics.add_sink(sink)
        try:
            run_loadtest(
                tiny_db, tiny_indexes["sif"], queries,
                LoadTestConfig(qps=20.0, duration_seconds=0.5, workers=2),
            )
        finally:
            tiny_db.metrics.remove_sink(sink)
        summaries = [r for r in sink.records if r.get("type") == "loadtest"]
        assert summaries
        assert "row" in summaries[-1]


class TestConcurrentScrape:
    def test_counters_monotonic_while_driving(
        self, tiny_db, tiny_indexes, queries
    ):
        """A live scrape during the run sees counters only advance."""
        server = tiny_db.serve_telemetry(port=0)
        observed: list = []
        errors: list = []
        stop = threading.Event()

        def scrape_loop():
            pattern = re.compile(r"^repro_query_count (\d+)$", re.M)
            try:
                while not stop.is_set():
                    with urllib.request.urlopen(
                        server.url + "/metrics", timeout=5
                    ) as resp:
                        body = resp.read().decode()
                    match = pattern.search(body)
                    if match:
                        observed.append(int(match.group(1)))
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        scraper = threading.Thread(target=scrape_loop)
        scraper.start()
        try:
            config = LoadTestConfig(qps=40.0, duration_seconds=1.5, workers=4)
            report = run_loadtest(
                tiny_db, tiny_indexes["sif"], queries, config, label="scrape"
            )
        finally:
            stop.set()
            scraper.join()
            tiny_db.stop_telemetry()
        assert not errors
        assert report.completed == config.total_queries
        assert len(observed) >= 2, "scraper never caught the run"
        assert observed == sorted(observed), "counter went backwards"
        assert observed[-1] > observed[0]
