"""Tests for workload generation."""

import pytest

from repro.errors import QueryError
from repro.workloads.queries import (
    WorkloadConfig,
    generate_diversified_queries,
    generate_sk_queries,
)


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = WorkloadConfig()
        assert cfg.num_queries == 500
        assert cfg.num_keywords == 3
        assert cfg.resolved_delta_max() == 1500.0  # 500 * l
        assert cfg.k == 10
        assert cfg.lambda_ == 0.8

    def test_delta_max_override(self):
        assert WorkloadConfig(delta_max=250.0).resolved_delta_max() == 250.0

    def test_validation(self):
        with pytest.raises(QueryError):
            WorkloadConfig(num_queries=0)
        with pytest.raises(QueryError):
            WorkloadConfig(num_keywords=0)
        with pytest.raises(QueryError):
            WorkloadConfig(keyword_source="psychic")


class TestGeneration:
    def test_sk_queries_shape(self, tiny_db):
        cfg = WorkloadConfig(num_queries=20, num_keywords=2, seed=1)
        queries = generate_sk_queries(tiny_db, cfg)
        assert len(queries) == 20
        for q in queries:
            assert len(q.terms) == 2
            assert q.delta_max == 1000.0

    def test_determinism(self, tiny_db):
        cfg = WorkloadConfig(num_queries=10, seed=4)
        a = generate_sk_queries(tiny_db, cfg)
        b = generate_sk_queries(tiny_db, cfg)
        assert [(q.position, q.terms) for q in a] == [
            (q.position, q.terms) for q in b
        ]

    def test_seeds_differ(self, tiny_db):
        a = generate_sk_queries(tiny_db, WorkloadConfig(num_queries=10, seed=1))
        b = generate_sk_queries(tiny_db, WorkloadConfig(num_queries=10, seed=2))
        assert [q.terms for q in a] != [q.terms for q in b]

    def test_object_mode_queries_are_satisfiable(self, tiny_db):
        """Object-mode keywords come from one object, so at least one
        object in the dataset contains them all."""
        cfg = WorkloadConfig(num_queries=25, num_keywords=2, seed=9)
        for q in generate_sk_queries(tiny_db, cfg):
            assert any(o.contains_all(q.terms) for o in tiny_db.store)

    def test_frequency_mode(self, tiny_db):
        cfg = WorkloadConfig(
            num_queries=15, num_keywords=2, keyword_source="frequency", seed=3
        )
        queries = generate_sk_queries(tiny_db, cfg)
        vocab = tiny_db.store.vocabulary()
        for q in queries:
            assert q.terms <= vocab

    def test_positions_come_from_objects(self, tiny_db):
        cfg = WorkloadConfig(num_queries=15, seed=6)
        object_positions = {o.position for o in tiny_db.store}
        for q in generate_sk_queries(tiny_db, cfg):
            assert q.position in object_positions

    def test_diversified_queries_carry_k_lambda(self, tiny_db):
        cfg = WorkloadConfig(num_queries=5, k=7, lambda_=0.6, seed=2)
        for q in generate_diversified_queries(tiny_db, cfg):
            assert q.k == 7
            assert q.lambda_ == 0.6
