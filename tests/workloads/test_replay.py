"""Replay tests: record a live run, re-execute it, diff everything."""

from __future__ import annotations

import json
import math

import pytest

from repro.datasets import build_dataset
from repro.engine.plan import plan_diversified
from repro.errors import QueryError
from repro.network.graph import NetworkPosition
from repro.workloads.queries import (
    WorkloadConfig,
    generate_diversified_queries,
)
from repro.workloads.replay import (
    FlightJournal,
    ReplayConfig,
    load_flight_journal,
    run_replay,
)
from tests.conftest import TINY_PROFILE


def fresh_db():
    return build_dataset(TINY_PROFILE)


def record_run(path, with_updates=True):
    """Capture a small mixed workload (queries + dynamic updates)."""
    db = fresh_db()
    index = db.build_index("sif")
    recorder = db.enable_flight_recorder(path=path)
    recorder.set_header(
        profile="TINY", scale=1.0, seed=TINY_PROFILE.seed,
        distance_backend=db.distance_backend, scoring=db.scoring_mode,
        data_version=db.data_version,
    )
    queries = generate_diversified_queries(
        db, WorkloadConfig(num_queries=6, num_keywords=2, k=4, seed=31)
    )
    plans = [
        plan_diversified(db, index, q, method=("seq", "com")[i % 2])
        for i, q in enumerate(queries)
    ]
    first = [db.engine.execute(p, sequence=i)
             for i, p in enumerate(plans[:3])]
    if with_updates:
        victim = next(
            result.object_ids()[0] for result in first
            if result.object_ids()
        )
        db.insert_object(
            NetworkPosition(0, 1.0), {"t0", "t1"}, indexes=(index,)
        )
        db.delete_object(victim, indexes=(index,))
        db.update_edge_weight(2, 321.0, indexes=(index,))
    for i, plan in enumerate(plans[3:], start=3):
        db.engine.execute(plan, sequence=i)
    db.disable_flight_recorder()
    return db


@pytest.fixture(scope="module")
def journal_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("flight") / "flight.jsonl"
    record_run(path)
    return path


class TestLoadFlightJournal:
    def test_parses_all_record_types(self, journal_path):
        journal = load_flight_journal(journal_path)
        assert journal.header is not None
        assert journal.header["profile"] == "TINY"
        assert len(journal.queries) == 6
        assert len(journal.updates) == 3
        assert journal.skipped == 0

    def test_tolerates_foreign_and_malformed_lines(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            json.dumps({"type": "flight_header", "profile": "TINY"}) + "\n"
            + json.dumps({"type": "snapshot", "counters": {}}) + "\n"
            + '{"truncated": \n'
        )
        journal = load_flight_journal(path)
        assert journal.header is not None
        assert journal.skipped == 2


class TestReplayConfig:
    def test_validation(self):
        with pytest.raises(QueryError):
            ReplayConfig(workers=0)
        with pytest.raises(QueryError):
            ReplayConfig(limit=0)


class TestReplayDeterminism:
    def test_same_backend_zero_divergences(self, journal_path):
        journal = load_flight_journal(journal_path)
        report = run_replay(fresh_db(), journal,
                            journal_path=str(journal_path))
        assert report.passed
        assert report.queries_replayed == 6
        assert report.updates_applied == {
            "insert": 1, "delete": 1, "edge_weight": 1,
        }
        assert set(report.per_label) == {"SIF/SEQ", "SIF/COM"}
        assert all(
            slot["diverged"] == 0 for slot in report.per_label.values()
        )
        assert "PASS — zero divergences" in report.render()

    @pytest.mark.parametrize("backend", ["ch", "hub"])
    def test_cross_backend_zero_divergences(self, journal_path, backend):
        db = fresh_db()
        db.use_distance_backend(backend)
        report = run_replay(db, load_flight_journal(journal_path))
        assert report.passed, [d.render() for d in report.divergences]
        assert report.backend == backend

    def test_scalar_scoring_zero_divergences(self, journal_path):
        db = fresh_db()
        db.use_scoring_mode("scalar")
        report = run_replay(db, load_flight_journal(journal_path))
        assert report.passed, [d.render() for d in report.divergences]

    def test_concurrent_replay_zero_divergences(self, journal_path):
        report = run_replay(
            fresh_db(), load_flight_journal(journal_path),
            ReplayConfig(workers=4),
        )
        assert report.passed
        assert report.workers == 4

    def test_limit_caps_queries(self, journal_path):
        report = run_replay(
            fresh_db(), load_flight_journal(journal_path),
            ReplayConfig(limit=2),
        )
        assert report.queries_replayed == 2
        assert report.passed


class TestReplayCatchesDivergence:
    def test_tampered_digest_caught(self, journal_path):
        journal = load_flight_journal(journal_path)
        journal.queries[2]["digest"] = "0" * 16
        report = run_replay(fresh_db(), journal)
        assert not report.passed
        fields = {d.fieldname for d in report.divergences}
        assert fields == {"digest"}
        diverged = sum(
            slot["diverged"] for slot in report.per_label.values()
        )
        assert diverged == 1
        assert "FAIL — 1 divergence(s)" in report.render()

    def test_tampered_invariant_counter_caught(self, journal_path):
        journal = load_flight_journal(journal_path)
        journal.queries[0]["stats"]["candidates"] += 5
        report = run_replay(fresh_db(), journal)
        assert {d.fieldname for d in report.divergences} == {"candidates"}

    def test_perturbed_backend_caught(self, journal_path, monkeypatch):
        from tests.engine.test_shadow import PerturbingBackend

        db = fresh_db()
        db.use_distance_backend("ch")
        oracle = db.ch_oracle()
        monkeypatch.setattr(
            db, "pairwise_backend",
            lambda: PerturbingBackend(oracle),
        )
        report = run_replay(db, load_flight_journal(journal_path))
        assert not report.passed
        # The warp moves objectives/digests, never the INE search shape.
        fields = {d.fieldname for d in report.divergences}
        assert fields <= {"digest", "objective", "results"}
        assert "digest" in fields

    def test_missing_update_breaks_epoch_alignment(self, journal_path):
        journal = load_flight_journal(journal_path)
        dropped = journal.updates.pop()  # lose the edge reweight
        assert dropped["kind"] == "edge_weight"
        report = run_replay(fresh_db(), journal)
        assert not report.passed
        assert any(
            d.fieldname == "data_version" for d in report.divergences
        )


class TestReplayReportShape:
    def test_row_and_summary_record(self, journal_path):
        report = run_replay(fresh_db(), load_flight_journal(journal_path),
                            journal_path=str(journal_path))
        row = report.row()
        assert row["verdict"] == "PASS"
        assert row["queries"] == 6
        assert row["updates"] == 3
        assert math.isfinite(row["wall_s"])
        summary = report.summary_record()
        assert summary["type"] == "replay"
        assert summary["divergences"] == []

    def test_unknown_index_name_rejected(self):
        journal = FlightJournal(
            queries=[{
                "type": "flight", "kind": "sk", "label": "X", "index": "BOGUS",
                "epoch": 0, "digest": "", "results": 0,
                "query": {"position": {"edge_id": 0, "offset": 0.0},
                          "terms": ["t0"], "delta_max": 100.0},
            }],
        )
        with pytest.raises(QueryError):
            run_replay(fresh_db(), journal)
