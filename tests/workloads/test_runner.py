"""Tests for workload execution and reporting."""

import pytest

from repro.workloads.queries import WorkloadConfig, generate_diversified_queries, generate_sk_queries
from repro.workloads.runner import WorkloadReport, run_diversified_workload, run_sk_workload


class TestReport:
    def test_empty_report(self):
        r = WorkloadReport(label="x")
        assert r.avg_response_time == 0.0
        assert r.avg_io == 0.0
        assert r.avg_candidates == 0.0

    def test_averages(self):
        r = WorkloadReport(label="x", io_latency=0.001)
        r.num_queries = 2
        r.total_wall_seconds = 0.2
        r.total_physical_reads = 100
        r.total_candidates = 10
        assert r.avg_io == 50.0
        assert r.avg_candidates == 5.0
        assert r.avg_response_time == pytest.approx((0.2 + 0.1) / 2)

    def test_row_keys(self):
        row = WorkloadReport(label="SIF").row()
        assert {
            "label", "queries", "avg_time_ms", "avg_io",
            "avg_candidates", "avg_false_hit_objects",
            "p50_ms", "p95_ms", "p99_ms",
        } <= set(row)

    def test_percentiles(self):
        r = WorkloadReport(label="x")
        r.latencies = [0.010 * (i + 1) for i in range(100)]  # 10ms..1000ms
        assert r.percentile(50) == pytest.approx(0.505, rel=1e-6)
        assert r.percentile(95) == pytest.approx(0.9505, rel=1e-6)
        assert r.percentile(99) == pytest.approx(0.9901, rel=1e-6)
        assert r.percentile(100) == pytest.approx(1.0)

    def test_stage_breakdown_in_row(self, tiny_db, tiny_indexes):
        queries = generate_diversified_queries(
            tiny_db, WorkloadConfig(num_queries=3, num_keywords=2, k=4, seed=15)
        )
        report = run_diversified_workload(
            tiny_db, tiny_indexes["sif"], queries, method="com"
        )
        row = report.row()
        assert "expansion_ms" in row
        assert "maintenance_ms" in row
        assert "signature_ms" in row
        # Measured stage times are sub-intervals of query wall time:
        # their largest member can never exceed the total (io_simulated
        # is synthetic latency, not wall time).
        measured = {
            k: v for k, v in report.stage_totals.items() if k != "io_simulated"
        }
        assert max(measured.values()) <= report.total_wall_seconds * 1.05


class TestRunners:
    def test_sk_workload(self, tiny_db, tiny_indexes):
        queries = generate_sk_queries(
            tiny_db, WorkloadConfig(num_queries=8, num_keywords=2, seed=44)
        )
        report = run_sk_workload(tiny_db, tiny_indexes["sif"], queries)
        assert report.num_queries == 8
        assert report.total_physical_reads >= 0
        assert report.label == "SIF"

    def test_cold_buffer_costs_more(self, tiny_db, tiny_indexes):
        queries = generate_sk_queries(
            tiny_db, WorkloadConfig(num_queries=8, num_keywords=2, seed=44)
        )
        warm = run_sk_workload(tiny_db, tiny_indexes["if"], queries)
        cold = run_sk_workload(
            tiny_db, tiny_indexes["if"], queries, cold_buffer=True
        )
        assert cold.total_physical_reads >= warm.total_physical_reads

    def test_diversified_workload(self, tiny_db, tiny_indexes):
        queries = generate_diversified_queries(
            tiny_db, WorkloadConfig(num_queries=4, num_keywords=2, k=4, seed=15)
        )
        seq = run_diversified_workload(
            tiny_db, tiny_indexes["sif"], queries, method="seq"
        )
        com = run_diversified_workload(
            tiny_db, tiny_indexes["sif"], queries, method="com"
        )
        assert seq.num_queries == com.num_queries == 4
        assert com.total_candidates <= seq.total_candidates

    def test_custom_label(self, tiny_db, tiny_indexes):
        queries = generate_sk_queries(
            tiny_db, WorkloadConfig(num_queries=2, seed=5)
        )
        report = run_sk_workload(
            tiny_db, tiny_indexes["sif"], queries, label="custom"
        )
        assert report.label == "custom"
