"""Mixed update/query workloads: batching, reporting, determinism."""

import numpy as np
import pytest

from repro.datasets.catalog import DatasetProfile, build_dataset
from repro.errors import QueryError
from repro.workloads import (
    UpdateWorkloadConfig,
    WorkloadConfig,
    generate_diversified_queries,
    generate_update_ops,
    run_update_workload,
)

PROFILE = DatasetProfile(
    name="TINY-UPD",
    network_kind="planar",
    num_nodes=120,
    neighbours=3,
    num_objects=400,
    vocabulary_size=80,
    avg_keywords=6,
    zipf_z=1.0,
    num_topics=8,
    seed=5,
)


def make_db():
    return build_dataset(PROFILE)


def make_queries(db, n=8, seed=31):
    return generate_diversified_queries(
        db, WorkloadConfig(num_queries=n, num_keywords=2, k=4, seed=seed)
    )


class TestConfigValidation:
    def test_rejects_negative_updates(self):
        with pytest.raises(QueryError):
            UpdateWorkloadConfig(updates_per_batch=-1)

    def test_rejects_zero_batches(self):
        with pytest.raises(QueryError):
            UpdateWorkloadConfig(num_batches=0)

    def test_rejects_all_zero_weights(self):
        with pytest.raises(QueryError):
            UpdateWorkloadConfig(
                insert_weight=0.0, delete_weight=0.0, edge_weight_weight=0.0
            )

    def test_rejects_bad_factor_range(self):
        with pytest.raises(QueryError):
            UpdateWorkloadConfig(weight_factor_range=(0.0, 2.0))
        with pytest.raises(QueryError):
            UpdateWorkloadConfig(weight_factor_range=(2.0, 0.5))


class TestGeneration:
    def test_ops_follow_the_mix(self):
        db = make_db()
        config = UpdateWorkloadConfig(
            insert_weight=1.0, delete_weight=0.0, edge_weight_weight=0.0
        )
        rng = np.random.default_rng(1)
        ops = generate_update_ops(db, config, 10, rng)
        assert [kind for kind, _ in ops] == ["insert"] * 10

    def test_ops_are_seed_deterministic(self):
        db = make_db()
        config = UpdateWorkloadConfig(seed=9)
        a = generate_update_ops(db, config, 30, np.random.default_rng(9))
        b = generate_update_ops(db, config, 30, np.random.default_rng(9))
        assert a == b


class TestRun:
    def test_report_shape_and_epoch(self):
        db = make_db()
        index = db.build_index("sif", file_prefix="upd-shape")
        config = UpdateWorkloadConfig(updates_per_batch=5, num_batches=3)
        report = run_update_workload(
            db, index, make_queries(db), config, io_latency=0.0
        )
        assert report.query_report.num_queries == 8
        # 2 update rounds of 5; every op resolves on a populated db.
        assert sum(report.updates_applied.values()) == 10
        assert report.final_epoch == db.data_version
        assert report.final_epoch == 10
        row = report.row()
        assert row["updates"] == 10
        assert row["epoch"] == 10
        assert row["update_ms"] >= 0.0
        for kind, count in report.updates_applied.items():
            assert row[f"updates_{kind}"] == count
        record = report.summary_record()
        assert record["type"] == "update_workload"
        assert record["final_epoch"] == 10
        assert record["updates_applied"] == report.updates_applied

    def test_emits_summary_metric(self):
        db = make_db()
        index = db.build_index("sif", file_prefix="upd-metric")
        records = []

        class _Sink:
            def emit(self, record):
                records.append(record)

        db.metrics.add_sink(_Sink())
        run_update_workload(
            db,
            index,
            make_queries(db, n=4),
            UpdateWorkloadConfig(updates_per_batch=2, num_batches=2),
            io_latency=0.0,
        )
        assert any(r.get("type") == "update_workload" for r in records)

    def test_workers_run_the_same_queries(self):
        db = make_db()
        index = db.build_index("sif", file_prefix="upd-workers")
        config = UpdateWorkloadConfig(updates_per_batch=4, num_batches=2, seed=3)
        report = run_update_workload(
            db,
            index,
            make_queries(db, n=6),
            config,
            io_latency=0.0,
            workers=4,
        )
        assert report.query_report.workers == 4
        assert report.query_report.num_queries == 6
        assert sum(report.updates_applied.values()) == 4

    def test_single_batch_applies_no_updates(self):
        db = make_db()
        index = db.build_index("sif", file_prefix="upd-single")
        report = run_update_workload(
            db,
            index,
            make_queries(db, n=3),
            UpdateWorkloadConfig(updates_per_batch=50, num_batches=1),
            io_latency=0.0,
        )
        assert report.updates_applied == {}
        assert report.final_epoch == 0

    def test_updated_answers_match_a_fresh_serial_query(self):
        """After the workload, re-running any query serially against the
        mutated database gives the same answer the engine would give —
        the workload leaves no stale cached state behind."""
        from repro.engine.plan import plan_diversified

        db = make_db()
        db.use_shared_distance_cache(max_entries=50_000)
        db.use_result_cache(max_entries=32)
        index = db.build_index("sif", file_prefix="upd-consist")
        queries = make_queries(db, n=6, seed=17)
        run_update_workload(
            db,
            index,
            queries,
            UpdateWorkloadConfig(updates_per_batch=10, num_batches=3, seed=5),
            io_latency=0.0,
            workers=2,
        )
        for q in queries:
            via_engine = db.engine.execute(
                plan_diversified(db, index, q, method="seq")
            )
            scratch = db.diversified_search(index, q, method="seq")
            assert via_engine.object_ids() == scratch.object_ids()

    def test_hub_backend_never_serves_stale_answers(self):
        """The update workload under ``--distance-backend hub``: every
        reweight batch drops the label oracle, and post-workload answers
        equal a dijkstra evaluation against the mutated network —
        i.e. the lazily rebuilt labels reflect every journaled update."""
        db = make_db()
        db.use_distance_backend("hub")
        db.hub_oracle()  # build eagerly so the workload must invalidate
        index = db.build_index("sif", file_prefix="upd-hub")
        queries = make_queries(db, n=5, seed=23)
        report = run_update_workload(
            db,
            index,
            queries,
            UpdateWorkloadConfig(updates_per_batch=8, num_batches=3, seed=9),
            io_latency=0.0,
        )
        counters = db.metrics.counters()
        reweights = counters.get("update.edge_weight", 0)
        assert report.final_epoch == db.data_version > 0
        if reweights:
            assert counters.get("hub_label.invalidations", 0) >= 1
        for q in queries:
            got = db.diversified_search(index, q, method="com")
            db.use_distance_backend("dijkstra")
            want = db.diversified_search(index, q, method="com")
            db.use_distance_backend("hub")
            assert got.object_ids() == want.object_ids()
            assert got.objective_value == pytest.approx(
                want.objective_value
            )
